#include "core/experiment.hpp"

#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::core {
namespace {

/// Per-graph means for one (optimizer, depth) cell — the sharded
/// sweep's unit payload.
struct GraphStats {
  double naive_ar = 0.0;
  double naive_fc = 0.0;
  double ml_ar = 0.0;
  double ml_fc = 0.0;
};

/// One (optimizer, depth) cell of the sweep.
struct Cell {
  optim::OptimizerKind optimizer;
  int target_depth;
};

std::vector<Cell> sweep_cells(const ExperimentConfig& config) {
  std::vector<Cell> cells;
  for (const optim::OptimizerKind optimizer : config.optimizers) {
    for (const int depth : config.target_depths) {
      cells.push_back(Cell{optimizer, depth});
    }
  }
  return cells;
}

void validate_sweep(const ParameterDataset& dataset,
                    const std::vector<std::size_t>& test_records,
                    const ExperimentConfig& config) {
  require(!test_records.empty(), "run_table1: empty test set");
  require(config.naive_runs >= 1 && config.ml_repeats >= 1,
          "run_table1: run counts must be >= 1");
  for (const std::size_t t : test_records) {
    require(t < dataset.size(), "run_table1: test record out of range");
  }
}

/// Computes one (cell, graph) unit.  Pure function of (dataset, config,
/// unit): the RNG stream is keyed by (seed, graph id, depth, optimizer)
/// only, so results are bit-identical for every thread count, shard
/// layout and scheduling order — the same purity contract corpus units
/// have, which is what makes the Table-I sweep shardable at all.
GraphStats compute_unit(const ParameterDataset& dataset,
                        const std::vector<std::size_t>& test_records,
                        const ParameterPredictor& predictor,
                        const ExperimentConfig& config,
                        const std::vector<Cell>& cells, std::size_t unit) {
  const std::size_t graphs = test_records.size();
  const Cell& cell = cells[unit / graphs];
  const std::size_t t = unit % graphs;
  const InstanceRecord& record = dataset.records()[test_records[t]];
  // Deterministic per-(cell, graph) stream.
  Rng rng(config.seed ^
          (static_cast<std::uint64_t>(record.id) << 32) ^
          (static_cast<std::uint64_t>(cell.target_depth) << 8) ^
          static_cast<std::uint64_t>(cell.optimizer));

  const MaxCutQaoa instance(record.problem, cell.target_depth);

  // Naive arm: per-run statistics over random initializations.
  std::vector<double> naive_ar;
  std::vector<double> naive_fc;
  for (int run = 0; run < config.naive_runs; ++run) {
    const QaoaRun r = solve_random_init(instance, cell.optimizer, rng,
                                        config.eval, config.options);
    naive_ar.push_back(r.approximation_ratio);
    naive_fc.push_back(static_cast<double>(r.function_calls));
  }

  // ML arm: the two-level flow (level-1 randomness repeats).
  TwoLevelConfig two_level;
  two_level.optimizer = cell.optimizer;
  two_level.options = config.options;
  two_level.eval = config.eval;
  std::vector<double> ml_ar;
  std::vector<double> ml_fc;
  for (int run = 0; run < config.ml_repeats; ++run) {
    const AcceleratedRun r = solve_two_level(
        record.problem, cell.target_depth, predictor, two_level, rng);
    ml_ar.push_back(r.final.approximation_ratio);
    ml_fc.push_back(static_cast<double>(r.total_function_calls));
  }

  return GraphStats{stats::mean(naive_ar), stats::mean(naive_fc),
                    stats::mean(ml_ar), stats::mean(ml_fc)};
}

/// Aggregates the flat per-unit stats into the per-cell rows (per-graph
/// statistics first, then mean and SD across graphs).
std::vector<TableRow> aggregate_rows(const std::vector<Cell>& cells,
                                     std::size_t graphs,
                                     const std::vector<GraphStats>& per_unit) {
  std::vector<TableRow> rows;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<double> nar;
    std::vector<double> nfc;
    std::vector<double> mar;
    std::vector<double> mfc;
    for (std::size_t t = 0; t < graphs; ++t) {
      const GraphStats& g = per_unit[c * graphs + t];
      nar.push_back(g.naive_ar);
      nfc.push_back(g.naive_fc);
      mar.push_back(g.ml_ar);
      mfc.push_back(g.ml_fc);
    }

    TableRow row;
    row.optimizer = cells[c].optimizer;
    row.target_depth = cells[c].target_depth;
    row.naive_ar_mean = stats::mean(nar);
    row.naive_ar_sd = stats::stddev(nar);
    row.naive_fc_mean = stats::mean(nfc);
    row.naive_fc_sd = stats::stddev(nfc);
    row.ml_ar_mean = stats::mean(mar);
    row.ml_ar_sd = stats::stddev(mar);
    row.ml_fc_mean = stats::mean(mfc);
    row.ml_fc_sd = stats::stddev(mfc);
    row.fc_reduction_percent =
        100.0 * (row.naive_fc_mean - row.ml_fc_mean) / row.naive_fc_mean;
    rows.push_back(row);
  }
  return rows;
}

constexpr const char* kTable1Header = "qaoaml-table1-shard-v1";

/// FNV-1a over the test-record indices: a compact test-set identity for
/// the config line (the full list can be hundreds of entries).
std::uint64_t test_set_hash(const std::vector<std::size_t>& test_records) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::size_t t : test_records) {
    h ^= static_cast<std::uint64_t>(t);
    h *= 1099511628211ULL;
  }
  return h;
}

/// The config line written to shard files; a full-line match is
/// required on resume/merge, so any change of dataset, test set, sweep
/// shape or optimizer options invalidates stale shards instead of
/// silently mixing experiments.
std::string table1_config_line(const ParameterDataset& dataset,
                               const std::vector<std::size_t>& test_records,
                               const ExperimentConfig& config,
                               const ShardSpec& shard) {
  std::ostringstream os;
  os.precision(17);
  os << "config table1 dataset={" << to_string(dataset.config()) << "}"
     << " tests=" << test_records.size() << ":" << test_set_hash(test_records)
     << " optimizers=";
  for (std::size_t i = 0; i < config.optimizers.size(); ++i) {
    os << (i ? "," : "") << optim::to_string(config.optimizers[i]);
  }
  os << " depths=";
  for (std::size_t i = 0; i < config.target_depths.size(); ++i) {
    os << (i ? "," : "") << config.target_depths[i];
  }
  os << " naive_runs=" << config.naive_runs
     << " ml_repeats=" << config.ml_repeats
     << " ftol=" << config.options.ftol << " xtol=" << config.options.xtol
     << " gtol=" << config.options.gtol
     << " fd_step=" << config.options.fd_step
     << " rho_begin=" << config.options.rho_begin
     << " rho_end=" << config.options.rho_end
     << " max_evals=" << config.options.max_evaluations
     << " max_iters=" << config.options.max_iterations
     << " seed=" << config.seed << ' ' << to_string(config.eval)
     << " shard=" << shard.index << '/'
     << shard.count;
  return os.str();
}

void write_unit_line(std::ostream& os, std::size_t unit,
                     const GraphStats& g) {
  os.precision(17);
  os << "unit " << unit << ' ' << g.naive_ar << ' ' << g.naive_fc << ' '
     << g.ml_ar << ' ' << g.ml_fc << '\n';
}

/// The longest valid prefix of unit lines in a Table-I shard file.
/// Units are one line each, so the only damage a kill can leave is a
/// torn trailing line — anything after the first malformed,
/// unterminated, out-of-order or foreign-unit line is discarded and
/// regenerated.
struct ParsedTable1Shard {
  std::vector<std::size_t> units;   ///< ascending, owned
  std::vector<GraphStats> stats;    ///< stats[i] is units[i]
};

ParsedTable1Shard parse_table1_shard(const std::string& path,
                                     const std::string& config_line,
                                     std::size_t total_units,
                                     const ShardSpec& shard) {
  ParsedTable1Shard out;
  std::ifstream is(path);
  if (!is.good()) return out;
  std::string line;
  if (!getline_complete(is, line) || line != kTable1Header) return out;
  if (!getline_complete(is, line) || line != config_line) return out;
  while (getline_complete(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    std::size_t unit = 0;
    GraphStats g;
    ls >> tag >> unit >> g.naive_ar >> g.naive_fc >> g.ml_ar >> g.ml_fc;
    std::string trailing;
    if (tag != "unit" || ls.fail() || (ls >> trailing, !trailing.empty()) ||
        !shard.owns(unit) || unit >= total_units ||
        (!out.units.empty() && unit <= out.units.back())) {
      break;
    }
    out.units.push_back(unit);
    out.stats.push_back(g);
  }
  return out;
}

}  // namespace

std::vector<TableRow> run_table1(const ParameterDataset& dataset,
                                 const std::vector<std::size_t>& test_records,
                                 const ParameterPredictor& predictor,
                                 const ExperimentConfig& config) {
  require(predictor.trained(), "run_table1: predictor not trained");
  validate_sweep(dataset, test_records, config);

  // Flatten the sweep into (cell, graph) work units and dispatch them
  // through the corpus pipeline's scheduler as ONE asynchronous wave:
  // no barrier between table cells, so a slow straggler in one cell no
  // longer idles the pool while the next cell waits to start.  Each
  // unit's RNG stream depends only on (seed, graph id, depth,
  // optimizer), exactly as before, so the flattening changes scheduling
  // but not a single reported number.
  const std::vector<Cell> cells = sweep_cells(config);
  const std::size_t graphs = test_records.size();
  std::vector<GraphStats> per_unit(cells.size() * graphs);

  std::vector<std::size_t> units(per_unit.size());
  std::iota(units.begin(), units.end(), std::size_t{0});
  run_units_in_order(units, [&](std::size_t unit, std::size_t) {
    per_unit[unit] =
        compute_unit(dataset, test_records, predictor, config, cells, unit);
  });

  return aggregate_rows(cells, graphs, per_unit);
}

double average_fc_reduction(const std::vector<TableRow>& rows) {
  require(!rows.empty(), "average_fc_reduction: no rows");
  double acc = 0.0;
  for (const TableRow& row : rows) acc += row.fc_reduction_percent;
  return acc / static_cast<double>(rows.size());
}

std::string table1_shard_path(const std::string& directory,
                              const ShardSpec& shard) {
  require(shard.count >= 1 && shard.index >= 0 && shard.index < shard.count,
          "table1_shard_path: invalid shard spec");
  return (std::filesystem::path(directory) /
          ("table1.shard" + std::to_string(shard.index) + "of" +
           std::to_string(shard.count) + ".txt"))
      .string();
}

Table1ShardReport run_table1_shard(const ParameterDataset& dataset,
                                   const std::vector<std::size_t>& test_records,
                                   const ParameterPredictor& predictor,
                                   const ExperimentConfig& config,
                                   const ShardSpec& shard,
                                   const std::string& directory,
                                   const ShardProgressFn& progress) {
  require(predictor.trained(), "run_table1_shard: predictor not trained");
  validate_sweep(dataset, test_records, config);

  Timer timer;
  std::filesystem::create_directories(directory);

  Table1ShardReport report;
  report.data_path = table1_shard_path(directory, shard);

  // Exclusive for the whole run, exactly like a corpus shard.
  const FileLock lock(report.data_path + ".lock");

  const std::vector<Cell> cells = sweep_cells(config);
  const std::size_t total = cells.size() * test_records.size();
  const std::string config_line =
      table1_config_line(dataset, test_records, config, shard);
  const std::vector<std::size_t> owned = shard_units(total, shard);
  report.units_owned = owned.size();

  // Resume: the prefix of owned units already on disk under this exact
  // config; rewrite the file down to it atomically, then stream the
  // remaining units in order.
  ParsedTable1Shard resumed =
      parse_table1_shard(report.data_path, config_line, total, shard);
  std::size_t resume_count = 0;
  while (resume_count < resumed.units.size() &&
         resumed.units[resume_count] == owned[resume_count]) {
    ++resume_count;
  }
  report.units_resumed = resume_count;
  if (progress) progress(resume_count, owned.size());

  {
    std::ostringstream prefix;
    prefix << kTable1Header << '\n' << config_line << '\n';
    for (std::size_t i = 0; i < resume_count; ++i) {
      write_unit_line(prefix, resumed.units[i], resumed.stats[i]);
    }
    replace_file_atomic(report.data_path, prefix.str());
  }
  resumed = ParsedTable1Shard{};

  std::ofstream data(report.data_path, std::ios::app);
  require(data.good(),
          "run_table1_shard: cannot open " + report.data_path);

  const std::vector<std::size_t> pending(owned.begin() + resume_count,
                                         owned.end());
  std::vector<GraphStats> slots(pending.size());
  // Commits are serialized, so the progress counter needs no lock.
  std::size_t committed = resume_count;
  run_units_in_order(
      pending,
      [&](std::size_t unit, std::size_t slot) {
        slots[slot] =
            compute_unit(dataset, test_records, predictor, config, cells, unit);
      },
      [&](std::size_t unit, std::size_t slot) {
        write_unit_line(data, unit, slots[slot]);
        data.flush();
        // Fail fast on I/O errors: every remaining unit would otherwise
        // keep burning CPU while its commits silently no-op.
        require(data.good(),
                "run_table1_shard: write failed at unit " +
                    std::to_string(unit));
        if (progress) progress(++committed, owned.size());
      });
  require(data.good(), "run_table1_shard: write failed");

  report.units_generated = pending.size();
  report.seconds = timer.seconds();
  return report;
}

std::vector<TableRow> merge_table1_shards(
    const ParameterDataset& dataset,
    const std::vector<std::size_t>& test_records,
    const ExperimentConfig& config, int shard_count,
    const std::string& directory) {
  require(shard_count >= 1, "merge_table1_shards: need >= 1 shard");
  validate_sweep(dataset, test_records, config);

  const std::vector<Cell> cells = sweep_cells(config);
  const std::size_t graphs = test_records.size();
  const std::size_t total = cells.size() * graphs;
  std::vector<GraphStats> per_unit(total);

  for (int s = 0; s < shard_count; ++s) {
    const ShardSpec shard{s, shard_count};
    const std::string path = table1_shard_path(directory, shard);
    const std::string config_line =
        table1_config_line(dataset, test_records, config, shard);
    const ParsedTable1Shard parsed =
        parse_table1_shard(path, config_line, total, shard);
    const std::vector<std::size_t> owned = shard_units(total, shard);
    if (parsed.units.size() != owned.size()) {
      // Distinguish "not done yet" from "done, but for a different
      // sweep" — an operator who changed a flag between generation and
      // merge should be told to fix the flag, not re-run the sweep.
      std::ifstream probe(path);
      std::string header;
      std::string file_config;
      if (probe.good() && std::getline(probe, header) &&
          std::getline(probe, file_config) && file_config != config_line) {
        throw InvalidArgument(
            "merge_table1_shards: shard " + std::to_string(s) + "/" +
            std::to_string(shard_count) +
            " was generated with a different config (" + path + ")");
      }
      throw InvalidArgument(
          "merge_table1_shards: shard " + std::to_string(s) + "/" +
          std::to_string(shard_count) + " incomplete (" +
          std::to_string(parsed.units.size()) + " of " +
          std::to_string(owned.size()) + " units in " + path + ")");
    }
    for (std::size_t i = 0; i < parsed.units.size(); ++i) {
      per_unit[parsed.units[i]] = parsed.stats[i];
    }
  }

  return aggregate_rows(cells, graphs, per_unit);
}

}  // namespace qaoaml::core
