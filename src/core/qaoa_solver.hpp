// The QAOA classical optimization loop (Fig. 1(a) of the paper).
//
// Wraps the optim module around a MaxCutQaoa objective and translates
// results into QAOA vocabulary: expectation, approximation ratio (AR)
// and function-call count (FC, the paper's run-time metric).
#ifndef QAOAML_CORE_QAOA_SOLVER_HPP
#define QAOAML_CORE_QAOA_SOLVER_HPP

#include <vector>

#include "core/qaoa_objective.hpp"
#include "optim/multistart.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml::core {

/// Outcome of one optimization-loop run.
struct QaoaRun {
  std::vector<double> params;       ///< optimized angles (canonicalized
                                    ///  when the spectrum is integral)
  double expectation = 0.0;         ///< <C> at the optimum
  double approximation_ratio = 0.0; ///< expectation / MaxCut
  int function_calls = 0;           ///< QC calls consumed by this run
  int iterations = 0;
  optim::StopReason stop = optim::StopReason::kConverged;
};

/// Runs the loop from an explicit starting point (warm start).
QaoaRun solve_from(const MaxCutQaoa& instance, optim::OptimizerKind optimizer,
                   std::span<const double> x0,
                   const optim::Options& options = {});

// EvalSpec-aware solving (ROADMAP item 4).  Exact specs reproduce the
// exact overloads bit for bit (same rng draws, same options).  Sampled
// specs optimize the finite-shot estimate under the noisy-objective
// preset (effective_options: ftol/xtol floored), then re-score the
// final angles with the EXACT expectation — expectation /
// approximation_ratio report where the noisy loop actually landed,
// while function_calls still counts the noisy objective calls.

/// solve_from under `eval`.  The measurement stream is seeded with
/// `eval.seed` (no caller Rng at this entry point).
QaoaRun solve_from(const MaxCutQaoa& instance, optim::OptimizerKind optimizer,
                   std::span<const double> x0, const EvalSpec& eval,
                   const optim::Options& options = {});

/// solve_from under `eval` with an explicit measurement-stream seed —
/// for callers that manage substreams themselves (multistart, the
/// two-level flow, pipelines).  Exact mode ignores the seed.
QaoaRun solve_from_seeded(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer,
                          std::span<const double> x0, const EvalSpec& eval,
                          std::uint64_t stream_seed,
                          const optim::Options& options = {});

/// Runs the loop from one uniformly random initialization (the paper's
/// QCR flow).
QaoaRun solve_random_init(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer, Rng& rng,
                          const optim::Options& options = {});

/// solve_random_init under `eval`.  In sampled mode the measurement
/// stream seed is drawn from `rng` after the starting point, so exact
/// specs consume exactly the draws of the exact overload (pipelines
/// stay bit-compatible) and shard units stay pure functions of their
/// own rng stream.
QaoaRun solve_random_init(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer, Rng& rng,
                          const EvalSpec& eval,
                          const optim::Options& options = {});

/// Best-of-k multistart (the paper's data-generation setting: "optimal
/// parameters ... from 20 random initializations").
struct MultistartRuns {
  QaoaRun best;
  std::vector<QaoaRun> runs;
  int total_function_calls = 0;
};

/// Runs `restarts` optimizations from random starting points and keeps
/// the best.  The restarts are evaluated as ONE batch over the thread
/// pool, BatchEvaluator-style: contiguous restart chunks are dispatched
/// together and each chunk's runs share a single reusable statevector
/// workspace, so a batch makes O(threads) 2^n allocations instead of
/// O(restarts).  Bit-identical to solve_multistart_sequential for every
/// thread count: starting points are drawn from `rng` up front in
/// restart order, each run depends only on its own start, and the
/// best/total reduction happens in restart order.
MultistartRuns solve_multistart(const MaxCutQaoa& instance,
                                optim::OptimizerKind optimizer, int restarts,
                                Rng& rng, const optim::Options& options = {});

/// solve_multistart under `eval`.  In sampled mode, per-restart
/// measurement-stream seeds are drawn from `rng` up front in restart
/// order (right after the starting points), so chunk boundaries and
/// thread counts cannot change a bit and exact specs leave the rng
/// sequence identical to the exact overload.
MultistartRuns solve_multistart(const MaxCutQaoa& instance,
                                optim::OptimizerKind optimizer, int restarts,
                                Rng& rng, const EvalSpec& eval,
                                const optim::Options& options = {});

/// The plain one-restart-after-another reference path (one fresh
/// buffered objective per restart, no batching).  Kept as the
/// differential-testing oracle for the batched path — same restarts,
/// same winner, bit-identical objectives — and as the honest baseline
/// for bench_multistart.
MultistartRuns solve_multistart_sequential(
    const MaxCutQaoa& instance, optim::OptimizerKind optimizer, int restarts,
    Rng& rng, const optim::Options& options = {});

/// The sequential oracle under `eval` — same seed derivation as the
/// batched EvalSpec overload, bit-identical results.
MultistartRuns solve_multistart_sequential(
    const MaxCutQaoa& instance, optim::OptimizerKind optimizer, int restarts,
    Rng& rng, const EvalSpec& eval, const optim::Options& options = {});

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_QAOA_SOLVER_HPP
