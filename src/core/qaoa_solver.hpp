// The QAOA classical optimization loop (Fig. 1(a) of the paper).
//
// Wraps the optim module around a MaxCutQaoa objective and translates
// results into QAOA vocabulary: expectation, approximation ratio (AR)
// and function-call count (FC, the paper's run-time metric).
#ifndef QAOAML_CORE_QAOA_SOLVER_HPP
#define QAOAML_CORE_QAOA_SOLVER_HPP

#include <vector>

#include "core/qaoa_objective.hpp"
#include "optim/multistart.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml::core {

/// Outcome of one optimization-loop run.
struct QaoaRun {
  std::vector<double> params;       ///< optimized angles (canonicalized
                                    ///  when the spectrum is integral)
  double expectation = 0.0;         ///< <C> at the optimum
  double approximation_ratio = 0.0; ///< expectation / MaxCut
  int function_calls = 0;           ///< QC calls consumed by this run
  int iterations = 0;
  optim::StopReason stop = optim::StopReason::kConverged;
};

/// Runs the loop from an explicit starting point (warm start).
QaoaRun solve_from(const MaxCutQaoa& instance, optim::OptimizerKind optimizer,
                   std::span<const double> x0,
                   const optim::Options& options = {});

/// Runs the loop from one uniformly random initialization (the paper's
/// QCR flow).
QaoaRun solve_random_init(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer, Rng& rng,
                          const optim::Options& options = {});

/// Best-of-k multistart (the paper's data-generation setting: "optimal
/// parameters ... from 20 random initializations").
struct MultistartRuns {
  QaoaRun best;
  std::vector<QaoaRun> runs;
  int total_function_calls = 0;
};

/// Runs `restarts` optimizations from random starting points and keeps
/// the best.  The restarts are evaluated as ONE batch over the thread
/// pool, BatchEvaluator-style: contiguous restart chunks are dispatched
/// together and each chunk's runs share a single reusable statevector
/// workspace, so a batch makes O(threads) 2^n allocations instead of
/// O(restarts).  Bit-identical to solve_multistart_sequential for every
/// thread count: starting points are drawn from `rng` up front in
/// restart order, each run depends only on its own start, and the
/// best/total reduction happens in restart order.
MultistartRuns solve_multistart(const MaxCutQaoa& instance,
                                optim::OptimizerKind optimizer, int restarts,
                                Rng& rng, const optim::Options& options = {});

/// The plain one-restart-after-another reference path (one fresh
/// buffered objective per restart, no batching).  Kept as the
/// differential-testing oracle for the batched path — same restarts,
/// same winner, bit-identical objectives — and as the honest baseline
/// for bench_multistart.
MultistartRuns solve_multistart_sequential(
    const MaxCutQaoa& instance, optim::OptimizerKind optimizer, int restarts,
    Rng& rng, const optim::Options& options = {});

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_QAOA_SOLVER_HPP
