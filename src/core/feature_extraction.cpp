#include "core/feature_extraction.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/angles.hpp"

namespace qaoaml::core {

std::string AngleId::name() const {
  return (kind == Kind::kGamma ? "gamma" : "beta") + std::to_string(stage);
}

std::vector<double> two_level_features(const InstanceRecord& record,
                                       int target_depth) {
  require(!record.optimal_params.empty(),
          "two_level_features: record has no depth-1 optimum");
  return {record.gamma_opt(1, 1), record.beta_opt(1, 1),
          static_cast<double>(target_depth)};
}

std::vector<double> hierarchical_features(const InstanceRecord& record,
                                          int intermediate_depth,
                                          int target_depth) {
  require(intermediate_depth >= 1, "hierarchical_features: bad pm");
  require(static_cast<std::size_t>(intermediate_depth) <=
              record.optimal_params.size(),
          "hierarchical_features: record lacks the intermediate depth");
  std::vector<double> features{record.gamma_opt(1, 1), record.beta_opt(1, 1)};
  const std::vector<double>& pm_params =
      record.optimal_params[static_cast<std::size_t>(intermediate_depth - 1)];
  features.insert(features.end(), pm_params.begin(), pm_params.end());
  features.push_back(static_cast<double>(target_depth));
  return features;
}

double response_of(const InstanceRecord& record, AngleId angle,
                   int target_depth) {
  return angle.kind == AngleId::Kind::kGamma
             ? record.gamma_opt(target_depth, angle.stage)
             : record.beta_opt(target_depth, angle.stage);
}

ml::Dataset build_angle_training_set(const ParameterDataset& dataset,
                                     const std::vector<std::size_t>& records,
                                     AngleId angle, int intermediate_depth) {
  require(angle.stage >= 1 && angle.stage <= dataset.max_depth(),
          "build_angle_training_set: stage out of range");
  ml::Dataset out;
  const int min_target = std::max({angle.stage, 2, intermediate_depth + 1});
  for (const std::size_t r : records) {
    require(r < dataset.size(), "build_angle_training_set: bad record index");
    const InstanceRecord& record = dataset.records()[r];
    for (int pt = min_target; pt <= dataset.max_depth(); ++pt) {
      const std::vector<double> features =
          intermediate_depth > 0
              ? hierarchical_features(record, intermediate_depth, pt)
              : two_level_features(record, pt);
      out.add(features, response_of(record, angle, pt));
    }
  }
  out.validate();
  return out;
}

}  // namespace qaoaml::core
