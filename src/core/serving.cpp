#include "core/serving.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/signals.hpp"
#include "core/angles.hpp"
#include "core/batch_evaluator.hpp"
#include "core/qaoa_solver.hpp"

namespace qaoaml::core::serving {

namespace {

Mode mode_from_frame_type(std::uint32_t frame_type) {
  switch (frame_type) {
    case kPredictRequest:
      return Mode::kPredict;
    case kWarmStartRequest:
      return Mode::kWarmStart;
    case kSolveRequest:
      return Mode::kSolve;
    default:
      throw InvalidArgument("serving: unknown request frame type " +
                            std::to_string(frame_type));
  }
}

}  // namespace

std::uint32_t request_frame_type(Mode mode) {
  switch (mode) {
    case Mode::kPredict:
      return kPredictRequest;
    case Mode::kWarmStart:
      return kWarmStartRequest;
    case Mode::kSolve:
      return kSolveRequest;
  }
  throw InvalidArgument("serving: invalid request mode");
}

void encode_graph(wire::PayloadWriter& writer, const graph::Graph& g) {
  writer.u32(static_cast<std::uint32_t>(g.num_nodes()));
  writer.u64(g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    writer.u32(static_cast<std::uint32_t>(e.u));
    writer.u32(static_cast<std::uint32_t>(e.v));
    writer.f64(e.weight);
  }
}

graph::Graph decode_graph(wire::PayloadReader& reader) {
  const std::uint32_t nodes = reader.u32();
  // The statevector is 2^nodes complex doubles; anything beyond ~30
  // qubits is a corrupt or hostile request, not a workload.
  if (nodes > 30) {
    throw InvalidArgument("serving: graph too large (" +
                          std::to_string(nodes) + " nodes)");
  }
  const std::uint64_t edge_count = reader.u64();
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(nodes) * (nodes > 0 ? nodes - 1 : 0) / 2;
  if (edge_count > max_edges) {
    throw InvalidArgument("serving: graph announces more edges than a "
                          "simple graph admits");
  }
  graph::Graph g(static_cast<int>(nodes));
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    const std::uint32_t u = reader.u32();
    const std::uint32_t v = reader.u32();
    const double weight = reader.f64();
    // add_edge re-validates: out-of-range endpoints, self-loops and
    // duplicates from a hostile client all throw here.
    g.add_edge(static_cast<int>(u), static_cast<int>(v), weight);
  }
  return g;
}

/// Version tag of the optional trailing eval block on kWarmStart /
/// kSolve requests.  The block is appended only for sampled specs, so
/// exact requests stay byte-identical to the pre-EvalSpec protocol.
constexpr std::uint32_t kEvalBlockVersion = 1;

std::string encode_request(const Request& request) {
  wire::PayloadWriter writer;
  writer.u64(request.id);
  writer.str(request.family);
  writer.i32(request.target_depth);
  if (request.mode == Mode::kPredict) {
    writer.f64(request.gamma1);
    writer.f64(request.beta1);
  } else {
    encode_graph(writer, request.problem);
    writer.u64(request.seed);
    writer.i32(request.level1_restarts);
    if (request.eval.sampled()) {
      writer.u32(kEvalBlockVersion);
      writer.i32(request.eval.shots);
      writer.i32(request.eval.averaging);
      writer.u32(request.eval.seed_policy == SeedPolicy::kPerCall ? 1 : 0);
      writer.u64(request.eval.seed);
    }
  }
  return writer.bytes();
}

Request decode_request(std::uint32_t frame_type, const std::string& payload) {
  Request request;
  request.mode = mode_from_frame_type(frame_type);
  wire::PayloadReader reader(payload);
  request.id = reader.u64();
  request.family = reader.str(1u << 10);
  request.target_depth = reader.i32();
  if (request.mode == Mode::kPredict) {
    request.gamma1 = reader.f64();
    request.beta1 = reader.f64();
  } else {
    request.problem = decode_graph(reader);
    request.seed = reader.u64();
    request.level1_restarts = reader.i32();
    if (!reader.at_end()) {
      // Optional trailing eval block (new clients in sampled mode).
      // Unknown versions throw: the checksum already passed, so this is
      // a future client, not line noise, and a loud error response
      // beats silently serving exact values for a sampled request.
      const std::uint32_t version = reader.u32();
      require(version == kEvalBlockVersion,
              "decode_request: unsupported eval block version " +
                  std::to_string(version));
      request.eval.mode = ObjectiveMode::kSampled;
      request.eval.shots = reader.i32();
      request.eval.averaging = reader.i32();
      request.eval.seed_policy =
          reader.u32() == 1 ? SeedPolicy::kPerCall : SeedPolicy::kStream;
      request.eval.seed = reader.u64();
      validate(request.eval);  // hostile shot counts -> error response
    }
  }
  reader.expect_end();
  return request;
}

std::string encode_response(const Response& response) {
  wire::PayloadWriter writer;
  writer.u64(response.id);
  writer.u32(response.ok ? 1 : 0);
  writer.str(response.error);
  writer.u64(response.bank_generation);
  writer.f64(response.gamma1);
  writer.f64(response.beta1);
  writer.vec_f64(response.angles);
  writer.f64(response.expectation);
  writer.f64(response.approximation_ratio);
  writer.i32(response.function_calls);
  return writer.bytes();
}

Response decode_response(const std::string& payload) {
  wire::PayloadReader reader(payload);
  Response response;
  response.id = reader.u64();
  response.ok = reader.u32() != 0;
  response.error = reader.str(1u << 16);
  response.bank_generation = reader.u64();
  response.gamma1 = reader.f64();
  response.beta1 = reader.f64();
  response.angles = reader.vec_f64(1u << 16);
  response.expectation = reader.f64();
  response.approximation_ratio = reader.f64();
  response.function_calls = reader.i32();
  reader.expect_end();
  return response;
}

std::string encode_stats(const ServerStats& stats) {
  wire::PayloadWriter writer;
  writer.u64(stats.served);
  writer.u64(stats.errors);
  writer.u64(stats.batches);
  writer.u64(stats.max_batch);
  writer.u64(stats.reloads);
  writer.u64(stats.connections);
  writer.u64(stats.bank_generation);
  return writer.bytes();
}

ServerStats decode_stats(const std::string& payload) {
  wire::PayloadReader reader(payload);
  ServerStats stats;
  stats.served = reader.u64();
  stats.errors = reader.u64();
  stats.batches = reader.u64();
  stats.max_batch = reader.u64();
  stats.reloads = reader.u64();
  stats.connections = reader.u64();
  stats.bank_generation = reader.u64();
  reader.expect_end();
  return stats;
}

// ---------------------------------------------------------------------------
// BankSet

namespace {

std::map<std::string, std::shared_ptr<const ParameterPredictor>> load_banks(
    const std::vector<std::pair<std::string, std::string>>& family_paths) {
  require(!family_paths.empty(), "BankSet: at least one bank is required");
  std::map<std::string, std::shared_ptr<const ParameterPredictor>> banks;
  for (const auto& [family, path] : family_paths) {
    require(!family.empty(), "BankSet: empty family name");
    auto bank = std::make_shared<const ParameterPredictor>(
        ParameterPredictor::load(path));
    if (!banks.emplace(family, std::move(bank)).second) {
      throw InvalidArgument("BankSet: duplicate bank for family '" + family +
                            "'");
    }
  }
  return banks;
}

}  // namespace

BankSet::BankSet(std::vector<std::pair<std::string, std::string>> family_paths)
    : family_paths_(std::move(family_paths)),
      banks_(load_banks(family_paths_)) {}

BankSet::Entry BankSet::lookup(const std::string& family) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = banks_.find(family);
  if (it == banks_.end()) {
    std::string known;
    for (const auto& [name, bank] : banks_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw InvalidArgument("serving: no bank for family '" + family +
                          "' (loaded: " + known + ")");
  }
  return Entry{it->second, generation_};
}

void BankSet::reload() {
  // Load outside the lock — file I/O and deserialization must not stall
  // lookups — then swap atomically.  On a throw the old set is untouched.
  auto fresh = load_banks(family_paths_);
  std::lock_guard<std::mutex> lock(mutex_);
  banks_ = std::move(fresh);
  ++generation_;
}

std::uint64_t BankSet::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

std::vector<std::string> BankSet::families() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(banks_.size());
  for (const auto& [name, bank] : banks_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Scheduler

Scheduler::Scheduler(const BankSet& banks, SchedulerConfig config)
    : banks_(banks), config_(config), queue_(config.queue_capacity) {
  require(config_.workers >= 1, "Scheduler: workers must be >= 1");
  require(config_.batch_max >= 1, "Scheduler: batch_max must be >= 1");
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::submit(Request request, Completion done) {
  queue_.push(Job{std::move(request), std::move(done)});
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();
  workers_.clear();  // jthread destructors join; pop_batch drains first
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Scheduler::worker_loop() {
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    if (queue_.pop_batch(batch, config_.batch_max) == 0) return;
    process_batch(batch);
  }
}

void Scheduler::process_batch(std::vector<Job>& jobs) {
  // Pass 1 — per-request work: bank lookup, level-1 optimization
  // (kWarmStart), or the full two-level solve (kSolve).  kWarmStart
  // defers its predicted-angle expectation to pass 2 so the whole
  // micro-batch evaluates as ONE heterogeneous BatchEvaluator batch.
  struct Deferred {
    std::size_t job = 0;           // index into `jobs`
    MaxCutQaoa instance;           // keeps the target instance alive
    int level1_calls = 0;          // carried through for the response
  };
  std::vector<Response> responses(jobs.size());
  std::deque<Deferred> deferred;
  std::vector<BatchJob> eval_jobs;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Request& request = jobs[i].request;
    Response& response = responses[i];
    response.id = request.id;
    try {
      const BankSet::Entry entry = banks_.lookup(request.family);
      response.bank_generation = entry.generation;
      switch (request.mode) {
        case Mode::kPredict: {
          response.gamma1 = request.gamma1;
          response.beta1 = request.beta1;
          response.angles = entry.bank->predict(request.gamma1, request.beta1,
                                                request.target_depth);
          break;
        }
        case Mode::kWarmStart: {
          TwoLevelConfig solver = config_.solver;
          solver.level1_restarts = request.level1_restarts;
          solver.eval = request.eval;
          Rng rng(request.seed);
          const QaoaRun level1 = [&] {
            const MaxCutQaoa level1_instance(request.problem, 1);
            if (solver.level1_restarts <= 1) {
              return solve_random_init(level1_instance, solver.optimizer, rng,
                                       solver.eval, solver.options);
            }
            MultistartRuns runs = solve_multistart(
                level1_instance, solver.optimizer, solver.level1_restarts,
                rng, solver.eval, solver.options);
            QaoaRun best = runs.best;
            best.function_calls = runs.total_function_calls;
            return best;
          }();
          response.gamma1 = gamma_of(level1.params, 1);
          response.beta1 = beta_of(level1.params, 1);
          response.angles = entry.bank->predict(
              response.gamma1, response.beta1, request.target_depth);
          deferred.push_back(
              Deferred{i, MaxCutQaoa(request.problem, request.target_depth),
                       level1.function_calls});
          break;
        }
        case Mode::kSolve: {
          TwoLevelConfig solver = config_.solver;
          solver.level1_restarts = request.level1_restarts;
          solver.eval = request.eval;
          Rng rng(request.seed);
          const AcceleratedRun run = solve_two_level(
              request.problem, request.target_depth, *entry.bank, solver, rng);
          response.gamma1 = gamma_of(run.level1.params, 1);
          response.beta1 = beta_of(run.level1.params, 1);
          response.angles = run.predicted_init;
          response.expectation = run.final.expectation;
          response.approximation_ratio = run.final.approximation_ratio;
          response.function_calls = run.total_function_calls;
          break;
        }
      }
      response.ok = true;
    } catch (const std::exception& e) {
      response.ok = false;
      response.error = e.what();
    }
  }

  // Pass 2 — one batched evaluation for every warm-start request in the
  // micro-batch.  Entry i depends only on job i (BatchEvaluator's
  // determinism contract), so batching never changes the bits.
  if (!deferred.empty()) {
    eval_jobs.reserve(deferred.size());
    for (const Deferred& d : deferred) {
      // The job carries the request's eval spec: a sampled warm-start
      // reports the finite-shot estimate at the prediction, seeded by
      // the spec itself (still a pure function of the request, so
      // micro-batching never changes the bits).
      eval_jobs.push_back(BatchJob{&d.instance, responses[d.job].angles,
                                   jobs[d.job].request.eval});
    }
    try {
      const std::vector<double> values = BatchEvaluator::evaluations(
          std::span<const BatchJob>(eval_jobs.data(), eval_jobs.size()));
      for (std::size_t k = 0; k < deferred.size(); ++k) {
        Response& response = responses[deferred[k].job];
        response.expectation = values[k];
        response.approximation_ratio =
            values[k] / deferred[k].instance.max_cut_value();
        // Level-1 calls plus the single prediction-point evaluation.
        response.function_calls = deferred[k].level1_calls + 1;
      }
    } catch (const std::exception& e) {
      for (const Deferred& d : deferred) {
        responses[d.job].ok = false;
        responses[d.job].error = e.what();
      }
    }
  }

  std::uint64_t ok_count = 0;
  for (const Response& response : responses) {
    if (response.ok) ++ok_count;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.served += ok_count;
    stats_.errors += jobs.size() - ok_count;
    stats_.batches += 1;
    stats_.max_batch = std::max(stats_.max_batch,
                                static_cast<std::uint64_t>(jobs.size()));
  }

  // Completions last: the connection layer may be waiting on these to
  // retire its pending count, and they must fire exactly once per job.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].done(responses[i]);
  }
}

// ---------------------------------------------------------------------------
// Server

struct Server::Connection {
  net::Fd fd;
  std::mutex write_mutex;       // interleaves responses on one socket
  std::mutex pending_mutex;
  std::condition_variable pending_cv;
  std::size_t pending = 0;      // requests in the scheduler for this conn
  std::atomic<bool> finished{false};
  std::thread thread;

  /// Sends one frame under the write lock.  A vanished peer
  /// (send_frame == false) or any send error is absorbed: the daemon
  /// drops the response and keeps serving other connections.
  void send(std::uint32_t type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mutex);
    try {
      wire::send_frame(fd.get(), type, payload);
    } catch (const std::exception&) {
      // Peer gone mid-write; nothing to do for a one-way response.
    }
  }
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      banks_(config_.banks),
      scheduler_(banks_, SchedulerConfig{config_.workers,
                                         config_.queue_capacity,
                                         config_.batch_max, config_.solver}),
      listener_(net::unix_listen(config_.socket_path, config_.backlog)) {
  ignore_sigpipe();  // belt to send_all's MSG_NOSIGNAL braces
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::reload() {
  banks_.reload();
  reloads_.fetch_add(1);
  if (config_.log != nullptr) {
    std::fprintf(config_.log, "[qaoad] banks reloaded (generation %llu)\n",
                 static_cast<unsigned long long>(banks_.generation()));
    std::fflush(config_.log);
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  // 1. Stop accepting: shutdown wakes the blocked accept, which then
  //    returns an invalid Fd and the accept loop exits.
  ::shutdown(listener_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Wake every connection reader with a read-side EOF.  In-flight
  //    requests stay queued; readers wait for their completions below.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conns.swap(open_connections_);
  }
  for (const auto& conn : conns) ::shutdown(conn->fd.get(), SHUT_RD);
  // 3. Join readers: each drains its pending completions (the scheduler
  //    workers are still running) and flushes its last responses.
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // 4. Now the queue is quiet; drain and join the workers.
  scheduler_.stop();
  listener_.reset();
  ::unlink(config_.socket_path.c_str());
}

ServerStats Server::stats() const {
  const Scheduler::Stats s = scheduler_.stats();
  ServerStats out;
  out.served = s.served;
  out.errors = s.errors;
  out.batches = s.batches;
  out.max_batch = s.max_batch;
  out.reloads = reloads_.load();
  out.connections = connections_.load();
  out.bank_generation = banks_.generation();
  return out;
}

const std::string& Server::socket_path() const { return config_.socket_path; }

void Server::accept_loop() {
  for (;;) {
    net::Fd client = net::accept_client(listener_.get());
    if (!client.valid()) return;  // listener shut down
    connections_.fetch_add(1);
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(client);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      // Reap connections whose reader already finished, so a long-lived
      // daemon does not accumulate one entry per served client.
      for (auto it = open_connections_.begin();
           it != open_connections_.end();) {
        if ((*it)->finished.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = open_connections_.erase(it);
        } else {
          ++it;
        }
      }
      open_connections_.push_back(conn);
    }
    conn->thread = std::thread([this, conn] {
      wire::Frame frame;
      for (;;) {
        try {
          if (wire::recv_frame(conn->fd.get(), frame) ==
              wire::RecvResult::kEof) {
            break;  // clean hang-up between requests
          }
        } catch (const std::exception& e) {
          // Corrupt frame or EOF mid-frame: answer with a framing error
          // (best effort — the peer may already be gone) and hang up.
          Response response;
          response.error = e.what();
          conn->send(kResultResponse, encode_response(response));
          break;
        }
        if (frame.type == kPingRequest) {
          conn->send(kPongResponse, frame.payload);
          continue;
        }
        if (frame.type == kStatsRequest) {
          conn->send(kStatsResponse, encode_stats(stats()));
          continue;
        }
        Request request;
        try {
          request = decode_request(frame.type, frame.payload);
        } catch (const std::exception& e) {
          Response response;
          response.error = e.what();
          conn->send(kResultResponse, encode_response(response));
          continue;
        }
        const std::uint64_t request_id = request.id;
        {
          std::lock_guard<std::mutex> lock(conn->pending_mutex);
          ++conn->pending;
        }
        try {
          scheduler_.submit(std::move(request),
                            [conn](const Response& response) {
                              conn->send(kResultResponse,
                                         encode_response(response));
                              {
                                std::lock_guard<std::mutex> lock(
                                    conn->pending_mutex);
                                --conn->pending;
                              }
                              conn->pending_cv.notify_all();
                            });
        } catch (const std::exception& e) {
          {
            std::lock_guard<std::mutex> lock(conn->pending_mutex);
            --conn->pending;
          }
          Response response;
          response.id = request_id;
          response.error = e.what();
          conn->send(kResultResponse, encode_response(response));
        }
      }
      // Hold the socket open until every in-flight request for this
      // connection has answered — the zero-drop half of hot reload and
      // graceful shutdown.
      std::unique_lock<std::mutex> lock(conn->pending_mutex);
      conn->pending_cv.wait(lock, [&] { return conn->pending == 0; });
      conn->fd.reset();
      conn->finished.store(true);
    });
  }
}

}  // namespace qaoaml::core::serving
