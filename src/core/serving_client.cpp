#include "core/serving_client.hpp"

#include "common/error.hpp"
#include "common/signals.hpp"
#include "common/wire.hpp"

namespace qaoaml::core::serving {

namespace {

/// One request -> one response frame of the expected type, or throw.
wire::Frame exchange(int fd, std::uint32_t request_type,
                     const std::string& payload,
                     std::uint32_t expected_response_type) {
  if (!wire::send_frame(fd, request_type, payload)) {
    throw Error("serving client: daemon hung up before the request");
  }
  wire::Frame frame;
  if (wire::recv_frame(fd, frame) == wire::RecvResult::kEof) {
    throw Error("serving client: daemon hung up before answering");
  }
  if (frame.type != expected_response_type) {
    throw Error("serving client: unexpected response frame type " +
                std::to_string(frame.type));
  }
  return frame;
}

}  // namespace

Client::Client(const std::string& socket_path)
    : fd_(net::unix_connect(socket_path)) {
  // send_all uses MSG_NOSIGNAL, but belt-and-braces for client code
  // that links this into larger programs.
  ignore_sigpipe();
}

Response Client::roundtrip(const Request& request) {
  const wire::Frame frame =
      exchange(fd_.get(), request_frame_type(request.mode),
               encode_request(request), kResultResponse);
  Response response = decode_response(frame.payload);
  if (response.id != request.id) {
    throw Error("serving client: response id mismatch (sent " +
                std::to_string(request.id) + ", got " +
                std::to_string(response.id) + ")");
  }
  return response;
}

Response Client::predict(const std::string& family, double gamma1,
                         double beta1, int target_depth) {
  Request request;
  request.mode = Mode::kPredict;
  request.id = next_id_++;
  request.family = family;
  request.target_depth = target_depth;
  request.gamma1 = gamma1;
  request.beta1 = beta1;
  return roundtrip(request);
}

Response Client::warm_start(const std::string& family,
                            const graph::Graph& problem, int target_depth,
                            std::uint64_t seed, int level1_restarts,
                            const EvalSpec& eval) {
  Request request;
  request.mode = Mode::kWarmStart;
  request.id = next_id_++;
  request.family = family;
  request.target_depth = target_depth;
  request.problem = problem;
  request.seed = seed;
  request.level1_restarts = level1_restarts;
  request.eval = eval;
  return roundtrip(request);
}

Response Client::solve(const std::string& family, const graph::Graph& problem,
                       int target_depth, std::uint64_t seed,
                       int level1_restarts, const EvalSpec& eval) {
  Request request;
  request.mode = Mode::kSolve;
  request.id = next_id_++;
  request.family = family;
  request.target_depth = target_depth;
  request.problem = problem;
  request.seed = seed;
  request.level1_restarts = level1_restarts;
  request.eval = eval;
  return roundtrip(request);
}

bool Client::ping(std::uint64_t token) {
  wire::PayloadWriter writer;
  writer.u64(token);
  const wire::Frame frame =
      exchange(fd_.get(), kPingRequest, writer.bytes(), kPongResponse);
  wire::PayloadReader reader(frame.payload);
  const std::uint64_t echoed = reader.u64();
  reader.expect_end();
  return echoed == token;
}

ServerStats Client::server_stats() {
  const wire::Frame frame =
      exchange(fd_.get(), kStatsRequest, std::string(), kStatsResponse);
  return decode_stats(frame.payload);
}

}  // namespace qaoaml::core::serving
