// Synchronous client for the qaoad serving protocol (core/serving.hpp).
//
// One Client = one connection = one outstanding request at a time; the
// pipelining unit is *clients*, not requests (bench_serving opens one
// Client per load-generator thread).  Every call round-trips one frame
// and validates the response exhaustively: frame type, response id echo
// and payload shape all have to match, so a protocol skew fails loudly
// at the call site instead of corrupting a measurement downstream.
//
// Not thread-safe: a Client serializes its socket; share nothing, open
// one per thread.  Throws common/error.hpp errors when the daemon is
// unreachable, hangs up mid-request, or answers malformed.
#ifndef QAOAML_CORE_SERVING_CLIENT_HPP
#define QAOAML_CORE_SERVING_CLIENT_HPP

#include <cstdint>
#include <string>

#include "common/socket.hpp"
#include "core/serving.hpp"
#include "graph/graph.hpp"

namespace qaoaml::core::serving {

class Client {
 public:
  /// Connects to the daemon at `socket_path`; throws when it is not
  /// there.
  explicit Client(const std::string& socket_path);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Bank lookup only: predicted warm-start angles for a depth-1
  /// optimum the caller already has.  Bit-identical to
  /// `train_predictor --predict` on the same bank file.
  Response predict(const std::string& family, double gamma1, double beta1,
                   int target_depth);

  /// Server-side level-1 optimization + prediction; the response also
  /// carries <C> at the predicted angles.  The default (exact) `eval`
  /// emits the pre-EvalSpec wire bytes, so this client speaks to old
  /// servers too; a sampled spec appends the optional eval block.
  Response warm_start(const std::string& family, const graph::Graph& problem,
                      int target_depth, std::uint64_t seed,
                      int level1_restarts = 1, const EvalSpec& eval = {});

  /// Full two-level solve (core/two_level_solver.hpp) on the server.
  Response solve(const std::string& family, const graph::Graph& problem,
                 int target_depth, std::uint64_t seed,
                 int level1_restarts = 1, const EvalSpec& eval = {});

  /// Any prepared request (the generic path the helpers above wrap).
  Response roundtrip(const Request& request);

  /// Liveness check: the daemon echoes `token` back.
  bool ping(std::uint64_t token = 1);

  /// The daemon's aggregate counters.
  ServerStats server_stats();

 private:
  net::Fd fd_;
  std::uint64_t next_id_ = 1;
};

}  // namespace qaoaml::core::serving

#endif  // QAOAML_CORE_SERVING_CLIENT_HPP
