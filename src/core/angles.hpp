// QAOA parameter-vector layout and initialization strategies.
//
// A depth-p instance has 2p parameters laid out as
//   [gamma_1 ... gamma_p, beta_1 ... beta_p]
// with the paper's optimization domain gamma in [0, 2*pi], beta in
// [0, pi].  Stage indices are 1-based in the API to match the paper's
// gamma_iOPT / beta_iOPT notation.
#ifndef QAOAML_CORE_ANGLES_HPP
#define QAOAML_CORE_ANGLES_HPP

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "optim/types.hpp"

namespace qaoaml::core {

/// Number of parameters of a depth-p instance (2p).
std::size_t num_angles(int p);

/// gamma_i (i in [1, p]) from a packed parameter vector.
double gamma_of(std::span<const double> params, int i);

/// beta_i (i in [1, p]) from a packed parameter vector.
double beta_of(std::span<const double> params, int i);

/// Writes gamma_i / beta_i into a packed parameter vector.
void set_gamma(std::vector<double>& params, int i, double value);
void set_beta(std::vector<double>& params, int i, double value);

/// Packs separate gamma/beta lists into the canonical layout.
std::vector<double> pack_angles(const std::vector<double>& gammas,
                                const std::vector<double>& betas);

/// The paper's optimization box: gamma in [0, 2*pi], beta in [0, pi].
optim::Bounds qaoa_bounds(int p);

/// Uniform random angles inside qaoa_bounds(p).
std::vector<double> random_angles(int p, Rng& rng);

/// Linear-ramp heuristic (the tutorial-style warm start used as an
/// ablation baseline): gamma ramps up across stages, beta ramps down,
///   gamma_i = gamma_scale * i / (p + 1),
///   beta_i  = beta_scale * (1 - i / (p + 1)).
std::vector<double> linear_ramp_angles(int p, double gamma_scale = 1.0,
                                       double beta_scale = 0.7);

/// INTERP bootstrap (Zhou et al., the paper's ref. [5]): linearly
/// interpolates a depth-p optimum into an initial point for depth p + 1,
///   gamma^{p+1}_i = (i-1)/p * gamma^p_{i-1} + (p-i+1)/p * gamma^p_i
/// (and likewise for beta), with out-of-range stages read as 0.  Used to
/// seed the data-generation multistart and as an ablation baseline.
std::vector<double> interp_angles(std::span<const double> params_p);

/// Canonicalizes optima of instances with an *integral* cut spectrum.
///
/// Unweighted MaxCut-QAOA has the exact symmetry
///   E(2*pi - gamma_i, pi - beta_i for all i) = E(gamma_i, beta_i)
/// (complex conjugation; gamma period 2*pi holds because C is integer
/// valued).  Optima therefore come in mirror pairs; this maps every
/// optimum into the half-domain beta_1 <= pi/2 so that the parameter
/// *trends* the paper observes (and the ML features/targets) are not
/// washed out by randomly mixing the two mirror copies.
std::vector<double> canonicalize_angles(std::span<const double> params);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_ANGLES_HPP
