// Cross-family warm-start transfer: the paper's Table-I protocol
// generalized into an N x N x M matrix sweep.
//
// The paper trains its predictor on the same Erdos-Renyi distribution
// it evaluates on; the interesting question (Khairy et al.,
// arXiv:1911.11071) is whether warm-start parameters *transfer* — does
// a predictor trained on family A still accelerate QAOA on instances
// drawn from family B?  This subsystem answers that empirically: for
// every (train family x eval family x model kind) cell it
//
//   1. generates a training corpus from the TRAIN ensemble
//      (ParameterDataset::generate under the cell's family),
//   2. trains a predictor bank of the cell's model kind on it,
//   3. draws FRESH eval instances from the EVAL ensemble (a stream
//      disjoint from every corpus stream),
//   4. runs a cold arm (batched solve_multistart from random
//      initializations) and a warm arm (the two-level flow seeded by
//      the bank) on each instance, and
//   5. reports function-call, iteration and approximation-ratio deltas.
//
// The diagonal cells reproduce the paper's same-distribution protocol;
// the off-diagonal cells are the transfer matrix.
//
// Contracts:
//  - **Determinism.**  run_transfer is deterministic in
//    TransferConfig::seed: corpora, banks, eval instances, and both
//    arms' RNG streams are keyed by (seed, cell/family, instance index)
//    only, so results are bit-identical for every thread count, shard
//    layout and scheduling order.  The cold arm's stream is keyed by
//    (eval family, instance) alone, so the cold baseline of one eval
//    column is identical across every train family and model — cells
//    in a column differ only by their warm arm, which is what makes
//    the matrix comparable.
//  - **Sharding.**  The flat (cell, eval instance) unit space splits
//    round-robin over the same generic ShardSpec the corpus and
//    Table-I pipelines use, with the same checkpoint/resume contract:
//    per-shard single-line result files (17 significant digits — exact
//    double round-trip), longest-valid-prefix resume after a kill,
//    atomic prefix rewrites, a flock sidecar against duplicate
//    invocations, and a merge that reproduces run_transfer bit for
//    bit.  Each shard retrains the banks it needs from the config —
//    deterministic training makes the bank part of the config, so
//    "nothing is shared but the config" holds here too (and
//    predictor-bank serialization in core/parameter_predictor.hpp
//    covers the train-once/serve-many case outside this sweep).
//  - **Scheduling.**  Within a run, bank training happens first (it
//    parallelizes internally), then all owned units fan out as one
//    asynchronous wave (run_units_in_order).  Each shard computes the
//    cold arm of an (eval family, instance) pair once and shares it
//    across that pair's owned cells.  Must not be called from inside a
//    parallel_* body.
//  - **Units.**  FC counts are raw objective-function calls, iteration
//    counts are optimizer iterations summed across restarts/stages,
//    AR is expectation / exact MaxCut.
#ifndef QAOAML_CORE_TRANSFER_EXPERIMENT_HPP
#define QAOAML_CORE_TRANSFER_EXPERIMENT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/parameter_predictor.hpp"

namespace qaoaml::core {

/// Sweep settings.  Defaults are a CI-scale run; the benches and tools
/// scale them up through flags / environment knobs.
struct TransferConfig {
  /// The matrix axes: instance distributions used both as train and as
  /// eval families (an N-entry list yields an N x N matrix).
  std::vector<EnsembleConfig> families;
  /// Model kinds swept per (train, eval) pair.
  std::vector<ml::RegressorKind> models{ml::RegressorKind::kGpr};

  // Train side: one corpus per family, generated with these knobs.
  int num_nodes = 8;
  int train_graphs = 24;     ///< corpus instances per train family
  int max_depth = 4;         ///< corpus depths 1..D (also caps target_depth)
  int corpus_restarts = 8;   ///< multistart count per (graph, depth)

  // Eval side.
  int eval_graphs = 8;       ///< fresh instances per eval family
  int target_depth = 3;      ///< depth both arms optimize (2..max_depth)
  int cold_restarts = 8;     ///< random inits in the cold multistart arm
  int warm_repeats = 1;      ///< two-level repeats (level-1 noise)

  optim::OptimizerKind optimizer = optim::OptimizerKind::kLbfgsb;
  optim::Options options{};  ///< ftol defaults to 1e-6
  std::uint64_t seed = 2020;

  /// Objective evaluation for BOTH eval arms (cold multistart and warm
  /// two-level), core/eval_spec.hpp.  The per-family training corpora
  /// stay exact regardless — the Streif & Leib "train without a QPU"
  /// setting: clean training optima, noisy deployment.  Part of the
  /// transfer config key, so a spec change invalidates stale shards.
  EvalSpec eval{};
};

/// One cell of the transfer matrix, aggregated over eval instances
/// (means and SDs across instances; iteration means across instances
/// of per-instance summed optimizer iterations).
struct TransferCell {
  std::size_t train_family = 0;  ///< index into TransferConfig::families
  std::size_t eval_family = 0;
  ml::RegressorKind model = ml::RegressorKind::kGpr;

  double cold_ar_mean = 0.0;
  double cold_ar_sd = 0.0;
  double cold_fc_mean = 0.0;
  double cold_fc_sd = 0.0;
  double cold_iter_mean = 0.0;

  double warm_ar_mean = 0.0;
  double warm_ar_sd = 0.0;
  double warm_fc_mean = 0.0;
  double warm_fc_sd = 0.0;
  double warm_iter_mean = 0.0;

  /// warm_ar_mean - cold_ar_mean (positive: warm start helps quality).
  double ar_delta = 0.0;
  /// 100 * (cold_fc_mean - warm_fc_mean) / cold_fc_mean.
  double fc_reduction_percent = 0.0;
  /// 100 * (cold_iter_mean - warm_iter_mean) / cold_iter_mean.
  double iter_reduction_percent = 0.0;
};

/// Validates every sweep knob (family list and knobs, model list,
/// corpus shape, target depth within the corpus range); throws
/// InvalidArgument otherwise.  Every entry point calls this before
/// touching on-disk state.
void validate(const TransferConfig& config);

/// The corpus-generation config of `family`'s train corpus — exposed so
/// tools and docs can reproduce exactly the corpus a transfer cell
/// trains on.
DatasetConfig transfer_corpus_config(const TransferConfig& config,
                                     std::size_t family);

/// Draws eval instance `index` of `family`: a pure function of
/// (config, family, index) on a stream disjoint from the corpus
/// streams, so eval instances are genuinely held out.  Instances with
/// zero edges are resampled (an edgeless MaxCut has no defined AR).
graph::Graph transfer_eval_instance(const TransferConfig& config,
                                    std::size_t family, std::size_t index);

/// Trains the bank of one (train corpus, model) pair on ALL corpus
/// records (the eval side is held out by construction, so no split is
/// needed).  Deterministic in its inputs.
ParameterPredictor train_transfer_bank(const ParameterDataset& corpus,
                                       ml::RegressorKind model);

/// Runs the full matrix in-process.  Cell order: train family major,
/// then eval family, then model (the order the axes are declared in).
std::vector<TransferCell> run_transfer(const TransferConfig& config);

/// Writes the machine-readable report: one "cell" line per matrix cell
/// with 17 significant digits (exact double round-trip), preceded by
/// the config key.  Byte-identical for every shard/thread count —
/// tools/run_transfer --out writes this format and CI diffs it.
void write_transfer_report(std::ostream& os, const TransferConfig& config,
                           const std::vector<TransferCell>& cells);

// ---------------------------------------------------------------------
// Sharded sweep (same operational contract as run_table1_shard /
// CorpusPipeline::run_shard; see the header comment).
// ---------------------------------------------------------------------

/// What one run_transfer_shard call did.
struct TransferShardReport {
  std::size_t units_owned = 0;      ///< (cell, instance) units owned
  std::size_t units_resumed = 0;    ///< found complete on disk and skipped
  std::size_t units_generated = 0;  ///< computed by this run
  std::size_t banks_trained = 0;    ///< predictor banks this run trained
  double seconds = 0.0;             ///< wall time of this run
  std::string data_path;
};

/// Shard result-file location inside `directory`.
std::string transfer_shard_path(const std::string& directory,
                                const ShardSpec& shard);

/// Computes (or resumes) one shard of the transfer sweep.  Banks are
/// retrained only for the cells that still have pending units, then
/// every owned unit not already on disk is computed and streamed to
/// the shard file in unit order.  Stale configs are discarded, a
/// truncated trailing line is regenerated, prefix rewrites are atomic,
/// and a flock sidecar makes concurrent duplicate invocations fail
/// fast.  `progress` (optional) follows the ShardProgressFn contract
/// of core/corpus_pipeline.hpp: serialized (done, owned) calls after
/// the resume scan and after every commit.
TransferShardReport run_transfer_shard(const TransferConfig& config,
                                       const ShardSpec& shard,
                                       const std::string& directory,
                                       const ShardProgressFn& progress = {});

/// Merges the complete shard files of a `shard_count`-way run into the
/// aggregated cells.  Throws if any shard is missing units or was
/// produced under a different config.  Bit-identical to
/// run_transfer(config) for every (shard count, thread count)
/// combination.
std::vector<TransferCell> merge_transfer_shards(const TransferConfig& config,
                                                int shard_count,
                                                const std::string& directory);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_TRANSFER_EXPERIMENT_HPP
