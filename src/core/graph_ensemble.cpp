#include "core/graph_ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "graph/generators.hpp"

namespace qaoaml::core {
namespace {

/// The four concrete families a kMixed instance can draw, in the fixed
/// order the per-instance draw indexes (part of the corpus recipe: a
/// reorder would change every mixed corpus, so don't).
constexpr GraphFamily kMixedPool[] = {
    GraphFamily::kErdosRenyi,
    GraphFamily::kRegular,
    GraphFamily::kWeightedErdosRenyi,
    GraphFamily::kSmallWorld,
};

void validate_family(const EnsembleConfig& config, GraphFamily family,
                     int num_nodes) {
  switch (family) {
    case GraphFamily::kErdosRenyi:
      require(config.edge_probability >= 0.0 && config.edge_probability <= 1.0,
              "EnsembleConfig: edge_probability must lie in [0, 1]");
      break;
    case GraphFamily::kRegular:
      require(config.degree >= 1 && config.degree < num_nodes,
              "EnsembleConfig: degree must lie in [1, num_nodes)");
      require((static_cast<std::int64_t>(num_nodes) * config.degree) % 2 == 0,
              "EnsembleConfig: num_nodes * degree must be even");
      break;
    case GraphFamily::kWeightedErdosRenyi:
      require(config.edge_probability >= 0.0 && config.edge_probability <= 1.0,
              "EnsembleConfig: edge_probability must lie in [0, 1]");
      switch (config.weight) {
        case WeightKind::kUniform:
          require(std::isfinite(config.weight_low) &&
                      std::isfinite(config.weight_high),
                  "EnsembleConfig: uniform weight bounds must be finite");
          require(config.weight_low < config.weight_high,
                  "EnsembleConfig: need weight_low < weight_high");
          break;
        case WeightKind::kGaussian:
          require(std::isfinite(config.weight_mean) &&
                      std::isfinite(config.weight_sd),
                  "EnsembleConfig: gaussian weight parameters must be finite");
          require(config.weight_sd >= 0.0,
                  "EnsembleConfig: weight_sd must be >= 0");
          break;
      }
      break;
    case GraphFamily::kSmallWorld:
      require(num_nodes >= 4,
              "EnsembleConfig: small-world needs >= 4 nodes");
      require(config.neighbors >= 2 && config.neighbors % 2 == 0 &&
                  config.neighbors < num_nodes - 1,
              "EnsembleConfig: neighbors must be even and in "
              "[2, num_nodes - 1)");
      require(config.rewire_probability >= 0.0 &&
                  config.rewire_probability <= 1.0,
              "EnsembleConfig: rewire_probability must lie in [0, 1]");
      break;
    case GraphFamily::kMixed:
      for (const GraphFamily f : kMixedPool) {
        validate_family(config, f, num_nodes);
      }
      break;
  }
}

std::int64_t family_max_edges(const EnsembleConfig& config, GraphFamily family,
                              int num_nodes) {
  const std::int64_t n = num_nodes;
  switch (family) {
    case GraphFamily::kErdosRenyi:
    case GraphFamily::kWeightedErdosRenyi:
      return config.edge_probability > 0.0 ? n * (n - 1) / 2 : 0;
    case GraphFamily::kRegular:
      return n * config.degree / 2;
    case GraphFamily::kSmallWorld:
      return n * config.neighbors / 2;
    case GraphFamily::kMixed: {
      std::int64_t bound = n * (n - 1) / 2;
      for (const GraphFamily f : kMixedPool) {
        bound = std::min(bound, family_max_edges(config, f, num_nodes));
      }
      return bound;
    }
  }
  return 0;  // unreachable
}

graph::Graph sample_family(const EnsembleConfig& config, GraphFamily family,
                           int num_nodes, Rng& rng) {
  switch (family) {
    case GraphFamily::kErdosRenyi:
      return graph::erdos_renyi_gnp(num_nodes, config.edge_probability, rng);
    case GraphFamily::kRegular:
      return graph::random_regular(num_nodes, config.degree, rng);
    case GraphFamily::kWeightedErdosRenyi: {
      const graph::Graph base =
          graph::erdos_renyi_gnp(num_nodes, config.edge_probability, rng);
      return config.weight == WeightKind::kUniform
                 ? graph::with_random_weights(base, config.weight_low,
                                              config.weight_high, rng)
                 : graph::with_gaussian_weights(base, config.weight_mean,
                                                config.weight_sd, rng);
    }
    case GraphFamily::kSmallWorld:
      return graph::watts_strogatz(num_nodes, config.neighbors,
                                   config.rewire_probability, rng);
    case GraphFamily::kMixed: {
      const GraphFamily drawn = kMixedPool[rng.uniform_int(
          sizeof(kMixedPool) / sizeof(kMixedPool[0]))];
      return sample_family(config, drawn, num_nodes, rng);
    }
  }
  throw InvalidArgument("sample_graph: unknown family");
}

}  // namespace

std::string to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::kErdosRenyi: return "erdos-renyi";
    case GraphFamily::kRegular: return "regular";
    case GraphFamily::kWeightedErdosRenyi: return "weighted-erdos-renyi";
    case GraphFamily::kSmallWorld: return "small-world";
    case GraphFamily::kMixed: return "mixed";
  }
  throw InvalidArgument("to_string: unknown GraphFamily");
}

GraphFamily family_from_string(const std::string& name) {
  if (name == "erdos-renyi" || name == "er") return GraphFamily::kErdosRenyi;
  if (name == "regular") return GraphFamily::kRegular;
  if (name == "weighted-erdos-renyi" || name == "weighted-er") {
    return GraphFamily::kWeightedErdosRenyi;
  }
  if (name == "small-world") return GraphFamily::kSmallWorld;
  if (name == "mixed") return GraphFamily::kMixed;
  throw InvalidArgument(
      "family_from_string: unknown graph family '" + name +
      "' (expected erdos-renyi, regular, weighted-erdos-renyi, "
      "small-world, or mixed)");
}

std::string to_string(const EnsembleConfig& config) {
  std::ostringstream os;
  os.precision(17);
  os << "family=" << to_string(config.family);
  // Emit only the tokens the family consumes: an unused knob must not
  // invalidate shard resume, and every consumed knob must (this string
  // feeds the dataset config key).
  const bool er = config.family == GraphFamily::kErdosRenyi ||
                  config.family == GraphFamily::kWeightedErdosRenyi ||
                  config.family == GraphFamily::kMixed;
  const bool weighted = config.family == GraphFamily::kWeightedErdosRenyi ||
                        config.family == GraphFamily::kMixed;
  const bool regular = config.family == GraphFamily::kRegular ||
                       config.family == GraphFamily::kMixed;
  const bool small_world = config.family == GraphFamily::kSmallWorld ||
                           config.family == GraphFamily::kMixed;
  if (er) os << " edge_prob=" << config.edge_probability;
  if (regular) os << " degree=" << config.degree;
  if (weighted) {
    os << " weight="
       << (config.weight == WeightKind::kUniform ? "uniform" : "gaussian");
    if (config.weight == WeightKind::kUniform) {
      os << " weight_low=" << config.weight_low
         << " weight_high=" << config.weight_high;
    } else {
      os << " weight_mean=" << config.weight_mean
         << " weight_sd=" << config.weight_sd;
    }
  }
  if (small_world) {
    os << " neighbors=" << config.neighbors
       << " rewire=" << config.rewire_probability;
  }
  return os.str();
}

void validate(const EnsembleConfig& config, int num_nodes) {
  validate_family(config, config.family, num_nodes);
}

std::int64_t max_edges(const EnsembleConfig& config, int num_nodes) {
  return family_max_edges(config, config.family, num_nodes);
}

graph::Graph sample_graph(const EnsembleConfig& config, int num_nodes,
                          Rng& rng) {
  validate(config, num_nodes);
  return sample_family(config, config.family, num_nodes, rng);
}

}  // namespace qaoaml::core
