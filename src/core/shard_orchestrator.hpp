// The multi-process shard orchestrator behind tools/launch.
//
// Process model: one orchestrator process, K monitor threads
// (std::jthread), at most K live worker processes.  Shard indices flow
// through a BoundedWorkQueue (common/work_queue.hpp) — monitors pop a
// shard, spawn its worker (common/subprocess.hpp), and follow the
// worker's line-framed stdout protocol (common/shard_protocol.hpp)
// until exit.  A dedicated scheduler thread owns admission: it feeds
// the initial shards, holds failed shards through their exponential
// backoff, and closes the queue once every shard is terminal — so a
// monitor never blocks pushing a retry into a full queue (that
// self-feeding deadlock is the classic bounded-queue bug).
//
// Failure policy, per shard attempt:
//  - nonzero exit / death by signal  -> failed
//  - no output (not even a heartbeat) for stall_timeout_s -> SIGKILL,
//    failed.  The shard's flock sidecar is probed first purely for the
//    error message: a free lock means the worker is already dead, a
//    held lock means it was alive but wedged.
// A failed shard retries after backoff_initial_s * backoff_factor^n
// (capped at backoff_max_s) until retry_budget retries are spent; the
// checkpoint/resume contract of the pipelines makes a retry cheap — it
// resumes from the last committed unit, it does not start over.
//
// The orchestrator only supervises; it never touches shard files.
// Merging stays with the worker CLIs' --merge-only mode (tools/launch
// runs it once every shard succeeds), which is what keeps the merged
// artifact bit-identical to a single-process run.
#ifndef QAOAML_CORE_SHARD_ORCHESTRATOR_HPP
#define QAOAML_CORE_SHARD_ORCHESTRATOR_HPP

#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/shard_protocol.hpp"

namespace qaoaml::core {

struct OrchestratorConfig {
  int shard_count = 1;
  int workers = 1;      ///< max concurrent worker processes
  int retry_budget = 3; ///< retries per shard AFTER its first attempt

  double backoff_initial_s = 0.5;
  double backoff_factor = 2.0;
  double backoff_max_s = 30.0;

  /// A worker that emits nothing (no progress, no heartbeat, no
  /// chatter) for this long is killed and the attempt fails.  <= 0
  /// disables stall detection.  Workers heartbeat every ~1 s
  /// (QAOAML_HEARTBEAT_S), so the default only fires on a genuinely
  /// wedged or dead process.
  double stall_timeout_s = 60.0;

  /// Queue bound between the scheduler and the monitors; 0 picks
  /// max(2 * workers, 2).  Deliberately small: admission order is the
  /// scheduler's job, the queue only decouples it from spawn latency.
  std::size_t queue_capacity = 0;

  /// argv for shard s's worker process (required).  Called once per
  /// attempt, from a monitor thread.
  std::function<std::vector<std::string>(int shard)> worker_argv;

  /// Path of shard s's flock sidecar, probed on a stall to sharpen the
  /// error message (optional).
  std::function<std::string(int shard)> lock_path;

  /// Aggregated progress + per-worker chatter sink; null = quiet.
  std::FILE* progress_out = nullptr;

  /// Failure-injection hook for tests and CI: invoked on every
  /// protocol event a live worker emits; returning true SIGKILLs that
  /// worker, and the attempt fails (and retries) through the normal
  /// path.  Null = never.
  std::function<bool(int shard, int attempt, const proto::Event& event)>
      kill_injector;
};

/// Terminal state of one shard after orchestration.
struct ShardOutcome {
  int shard = 0;
  int attempts = 0;        ///< total attempts (>= 1 once scheduled)
  bool succeeded = false;
  std::string error;       ///< last failure ("" when the shard never failed)
  std::size_t units_done = 0;
  std::size_t units_total = 0;
  std::size_t units_generated = 0;  ///< from the worker's `done` frame
  std::size_t units_resumed = 0;    ///< from the worker's `done` frame
};

struct OrchestratorReport {
  std::vector<ShardOutcome> shards;  ///< indexed by shard
  double seconds = 0.0;
  bool succeeded = false;  ///< every shard succeeded
};

/// Drives every shard to a terminal state (success, or retry budget
/// exhausted).  Blocks until done; throws InvalidArgument on a
/// malformed config.
OrchestratorReport run_shards(const OrchestratorConfig& config);

/// Inputs of one aggregated progress line.
struct ProgressSnapshot {
  std::size_t done = 0;
  std::size_t total = 0;
  double seconds = 0.0;  ///< elapsed wall time
  int finished = 0;      ///< shards succeeded
  int active = 0;        ///< shards in flight or retrying
};

/// Formats the aggregated progress line ("37/128 units 28.9% | 4.10
/// units/s | ETA 22 s | shards 1 done, 3 active").  Pure and total:
/// zero totals (no start frame yet), zero elapsed time, zero rates and
/// done > total (a resumed shard re-basing its counts) all format as
/// finite output — the percentage clamps, and an unknowable rate or ETA
/// prints as "--" rather than inf or NaN.
std::string format_progress_line(const ProgressSnapshot& snapshot);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_SHARD_ORCHESTRATOR_HPP
