// The paper's proposed flow (Fig. 4): two-level ML-accelerated QAOA.
//
// Level 1: optimize the depth-1 instance from a random initialization
// (cheap: 2 parameters).  Level 2: feed (gamma_1OPT, beta_1OPT, pt) to
// the trained predictor, seed the depth-pt loop with the predicted
// angles, and optimize locally.  The run-time metric is the *sum* of
// level-1 and level-2 function calls, exactly as Section IV accounts it.
//
// The three-level (hierarchical) extension inserts an intermediate
// depth pm: level 1 as above, level 2 optimizes depth pm seeded by a
// two-level prediction, level 3 optimizes depth pt seeded by the
// hierarchical predictor that sees both the depth-1 and depth-pm optima.
#ifndef QAOAML_CORE_TWO_LEVEL_SOLVER_HPP
#define QAOAML_CORE_TWO_LEVEL_SOLVER_HPP

#include "core/parameter_predictor.hpp"
#include "core/qaoa_solver.hpp"

namespace qaoaml::core {

/// Settings for the accelerated flows.
struct TwoLevelConfig {
  optim::OptimizerKind optimizer = optim::OptimizerKind::kLbfgsb;
  optim::Options options{};   ///< ftol defaults to 1e-6
  int level1_restarts = 1;    ///< random inits for the depth-1 stage

  /// How every stage's objective is evaluated (core/eval_spec.hpp).
  /// Sampled mode: each stage draws its measurement-stream seed from
  /// the caller's Rng (after the pre-existing draws, so exact configs
  /// consume the identical rng sequence as before), optimizes the
  /// finite-shot estimate under the noisy preset, and reports
  /// exact-rescored expectations.
  EvalSpec eval{};

  /// Trust-region radius for *warm-started* stages of derivative-free
  /// methods (COBYLA).  A cold start explores with options.rho_begin;
  /// exploring that coarsely from an ML-predicted point (which sits
  /// within ~0.05 rad of the optimum) would first walk away from it.
  double warm_rho_begin = 0.1;
};

/// Outcome of an accelerated run.
struct AcceleratedRun {
  QaoaRun level1;                      ///< depth-1 stage
  QaoaRun intermediate;                ///< depth-pm stage (three-level only)
  QaoaRun final;                       ///< target-depth stage
  std::vector<double> predicted_init;  ///< angles fed to the final stage
  int total_function_calls = 0;        ///< summed across all stages
};

/// Runs the two-level flow on `problem` for `target_depth`.
/// `predictor` must be a trained two-level bank.
AcceleratedRun solve_two_level(const graph::Graph& problem, int target_depth,
                               const ParameterPredictor& predictor,
                               const TwoLevelConfig& config, Rng& rng);

/// Runs the three-level flow.  `coarse` seeds the intermediate depth
/// (two-level bank), `fine` is a hierarchical bank whose
/// intermediate_depth defines pm.
AcceleratedRun solve_three_level(const graph::Graph& problem, int target_depth,
                                 const ParameterPredictor& coarse,
                                 const ParameterPredictor& fine,
                                 const TwoLevelConfig& config, Rng& rng);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_TWO_LEVEL_SOLVER_HPP
