// The Table I experiment harness: naive random initialization vs the
// two-level ML flow, swept over optimizers and target depths on the
// held-out test graphs.
//
// Contracts:
//  - **Determinism.**  run_table1 is deterministic in
//    ExperimentConfig::seed: each (optimizer, depth, graph) unit draws
//    from its own RNG stream keyed by (seed, graph id, depth,
//    optimizer), so results are bit-identical for every thread count
//    and scheduling order.
//  - **Scheduling.**  The whole sweep is flattened into one
//    asynchronous wave of (cell, graph) units on the persistent thread
//    pool (core/corpus_pipeline.hpp's run_units_in_order) — there is no
//    barrier between table cells.  run_table1 must not be called from
//    inside a parallel_* body.
//  - **Units.**  FC counts are raw objective-function calls (the
//    paper's run-time metric); AR is expectation / exact MaxCut, and
//    all angles handled internally follow core/angles.hpp (radians,
//    [gamma..., beta...] packing).
#ifndef QAOAML_CORE_EXPERIMENT_HPP
#define QAOAML_CORE_EXPERIMENT_HPP

#include <vector>

#include "core/two_level_solver.hpp"

namespace qaoaml::core {

/// Aggregated statistics of one (optimizer, depth) cell of Table I.
struct TableRow {
  optim::OptimizerKind optimizer = optim::OptimizerKind::kLbfgsb;
  int target_depth = 2;

  double naive_ar_mean = 0.0;
  double naive_ar_sd = 0.0;
  double naive_fc_mean = 0.0;  ///< raw mean function calls
  double naive_fc_sd = 0.0;

  double ml_ar_mean = 0.0;
  double ml_ar_sd = 0.0;
  double ml_fc_mean = 0.0;
  double ml_fc_sd = 0.0;

  /// 100 * (naive_fc_mean - ml_fc_mean) / naive_fc_mean.
  double fc_reduction_percent = 0.0;
};

/// Sweep settings (defaults = the paper's Section IV setup, scaled by
/// the benches through env knobs).
struct ExperimentConfig {
  std::vector<optim::OptimizerKind> optimizers = optim::all_optimizers();
  std::vector<int> target_depths{2, 3, 4, 5};
  int naive_runs = 20;   ///< random initializations per graph (naive arm)
  int ml_repeats = 3;    ///< two-level repeats per graph (level-1 noise)
  optim::Options options{};
  std::uint64_t seed = 7;
};

/// Runs the full sweep.  Per-graph statistics are averaged first, then
/// aggregated across graphs (mean and SD reported across graphs).
/// Parallel across graphs; deterministic in `config.seed`.
std::vector<TableRow> run_table1(const ParameterDataset& dataset,
                                 const std::vector<std::size_t>& test_records,
                                 const ParameterPredictor& predictor,
                                 const ExperimentConfig& config);

/// Average FC reduction over all rows (the paper's headline 44.9%).
double average_fc_reduction(const std::vector<TableRow>& rows);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_EXPERIMENT_HPP
