// The Table I experiment harness: naive random initialization vs the
// two-level ML flow, swept over optimizers and target depths on the
// held-out test graphs.
//
// Contracts:
//  - **Determinism.**  run_table1 is deterministic in
//    ExperimentConfig::seed: each (optimizer, depth, graph) unit draws
//    from its own RNG stream keyed by (seed, graph id, depth,
//    optimizer), so results are bit-identical for every thread count
//    and scheduling order.
//  - **Scheduling.**  The whole sweep is flattened into one
//    asynchronous wave of (cell, graph) units on the persistent thread
//    pool (core/corpus_pipeline.hpp's run_units_in_order) — there is no
//    barrier between table cells.  run_table1 must not be called from
//    inside a parallel_* body.
//  - **Units.**  FC counts are raw objective-function calls (the
//    paper's run-time metric); AR is expectation / exact MaxCut, and
//    all angles handled internally follow core/angles.hpp (radians,
//    [gamma..., beta...] packing).
#ifndef QAOAML_CORE_EXPERIMENT_HPP
#define QAOAML_CORE_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "core/corpus_pipeline.hpp"
#include "core/two_level_solver.hpp"

namespace qaoaml::core {

/// Aggregated statistics of one (optimizer, depth) cell of Table I.
struct TableRow {
  optim::OptimizerKind optimizer = optim::OptimizerKind::kLbfgsb;
  int target_depth = 2;

  double naive_ar_mean = 0.0;
  double naive_ar_sd = 0.0;
  double naive_fc_mean = 0.0;  ///< raw mean function calls
  double naive_fc_sd = 0.0;

  double ml_ar_mean = 0.0;
  double ml_ar_sd = 0.0;
  double ml_fc_mean = 0.0;
  double ml_fc_sd = 0.0;

  /// 100 * (naive_fc_mean - ml_fc_mean) / naive_fc_mean.
  double fc_reduction_percent = 0.0;
};

/// Sweep settings (defaults = the paper's Section IV setup, scaled by
/// the benches through env knobs).
struct ExperimentConfig {
  std::vector<optim::OptimizerKind> optimizers = optim::all_optimizers();
  std::vector<int> target_depths{2, 3, 4, 5};
  int naive_runs = 20;   ///< random initializations per graph (naive arm)
  int ml_repeats = 3;    ///< two-level repeats per graph (level-1 noise)
  optim::Options options{};
  std::uint64_t seed = 7;

  /// Objective evaluation for both arms (core/eval_spec.hpp).  Sampled
  /// mode re-runs the sweep under shot noise: every solver stage
  /// optimizes a finite-shot estimate (measurement streams drawn from
  /// each unit's own rng stream, preserving shard purity) and reports
  /// exact-rescored ARs.  Part of the shard config line, so changing it
  /// invalidates stale shard files.
  EvalSpec eval{};
};

/// Runs the full sweep.  Per-graph statistics are averaged first, then
/// aggregated across graphs (mean and SD reported across graphs).
/// Parallel across graphs; deterministic in `config.seed`.
std::vector<TableRow> run_table1(const ParameterDataset& dataset,
                                 const std::vector<std::size_t>& test_records,
                                 const ParameterPredictor& predictor,
                                 const ExperimentConfig& config);

/// Average FC reduction over all rows (the paper's headline 44.9%).
double average_fc_reduction(const std::vector<TableRow>& rows);

// ---------------------------------------------------------------------
// Sharded Table-I: the sweep's flat (cell, graph) unit space split
// round-robin across processes/machines via the same ShardSpec the
// corpus pipeline uses, with the same checkpoint/resume contract —
// per-shard result files, longest-valid-prefix resume after a kill,
// and a deterministic merge that reproduces run_table1 bit for bit.
// Unit results are streamed as single text lines (17 significant
// digits, which round-trips doubles exactly), so a torn trailing line
// is the only loss a kill can cause and it is simply regenerated.
//
// The shard file's config line covers the dataset key, the test-record
// set, and every ExperimentConfig field, so a stale shard (different
// sweep) is discarded instead of silently merged.  The predictor is
// NOT part of the key — callers must hand every shard and the merge a
// predictor trained identically (deterministic training from the same
// dataset/split/seed, as bench_common does); this mirrors the corpus
// pipeline's "nothing is shared but the config" model.
// ---------------------------------------------------------------------

/// What one run_table1_shard call did.
struct Table1ShardReport {
  std::size_t units_owned = 0;      ///< (cell, graph) units this shard owns
  std::size_t units_resumed = 0;    ///< found complete on disk and skipped
  std::size_t units_generated = 0;  ///< computed by this run
  double seconds = 0.0;             ///< wall time of this run
  std::string data_path;
};

/// Shard result-file location inside `directory`.
std::string table1_shard_path(const std::string& directory,
                              const ShardSpec& shard);

/// Computes (or resumes) one shard of the Table-I sweep: every owned
/// (cell, graph) unit not already on disk is computed and streamed to
/// the shard file in unit order.  Same operational guarantees as
/// CorpusPipeline::run_shard: stale configs are discarded, a truncated
/// trailing line is regenerated, prefix rewrites are atomic, and a
/// flock sidecar makes concurrent duplicate invocations fail fast.
/// `progress` (optional) follows the ShardProgressFn contract of
/// core/corpus_pipeline.hpp: serialized (done, owned) calls after the
/// resume scan and after every commit.
Table1ShardReport run_table1_shard(const ParameterDataset& dataset,
                                   const std::vector<std::size_t>& test_records,
                                   const ParameterPredictor& predictor,
                                   const ExperimentConfig& config,
                                   const ShardSpec& shard,
                                   const std::string& directory,
                                   const ShardProgressFn& progress = {});

/// Merges the complete shard files of a `shard_count`-way Table-I run
/// into the aggregated rows.  Throws if any shard is missing units or
/// was produced under a different config.  The result is bit-identical
/// to run_table1(dataset, test_records, predictor, config) for every
/// (shard count, thread count) combination.
std::vector<TableRow> merge_table1_shards(
    const ParameterDataset& dataset,
    const std::vector<std::size_t>& test_records,
    const ExperimentConfig& config, int shard_count,
    const std::string& directory);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_EXPERIMENT_HPP
