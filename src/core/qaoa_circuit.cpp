#include "core/qaoa_circuit.hpp"

#include "common/error.hpp"
#include "core/angles.hpp"

namespace qaoaml::core {

quantum::Circuit build_maxcut_ansatz(const graph::Graph& g, int p) {
  require(g.num_nodes() >= 2, "build_maxcut_ansatz: need >= 2 nodes");
  require(p >= 1, "build_maxcut_ansatz: depth must be >= 1");

  quantum::Circuit circuit(g.num_nodes());
  for (int q = 0; q < g.num_nodes(); ++q) circuit.h(q);

  for (int stage = 0; stage < p; ++stage) {
    const int gamma_index = stage;      // [gamma_1..gamma_p, ...]
    const int beta_index = p + stage;   // [..., beta_1..beta_p]
    // Phase separation: exp(-i gamma C) realized edge by edge.
    for (const graph::Edge& e : g.edges()) {
      circuit.cnot(e.u, e.v);
      circuit.rz(e.v, quantum::ParamExpr::bound(gamma_index, -e.weight));
      circuit.cnot(e.u, e.v);
    }
    // Mixing: the paper's parametric RX(beta) gate = exp(-i beta X / 2)
    // on every qubit.  (With beta in [0, pi] the box holds exactly one
    // period of the mixer; a 2*beta convention would fold two symmetric
    // copies of every optimum into the domain and scramble the trends.)
    for (int q = 0; q < g.num_nodes(); ++q) {
      circuit.rx(q, quantum::ParamExpr::bound(beta_index, 1.0));
    }
  }
  return circuit;
}

AnsatzCost ansatz_cost(const graph::Graph& g, int p) {
  const quantum::Circuit circuit = build_maxcut_ansatz(g, p);
  AnsatzCost cost;
  cost.cnot_count = circuit.count(quantum::GateKind::kCnot);
  cost.rz_count = circuit.count(quantum::GateKind::kRz);
  cost.rx_count = circuit.count(quantum::GateKind::kRx);
  cost.h_count = circuit.count(quantum::GateKind::kH);
  cost.depth = circuit.depth();
  return cost;
}

}  // namespace qaoaml::core
