// Batch-oriented QAOA objective evaluation.
//
// The simulator is the cost center of every experiment: each objective
// value costs O(p * 2^n) amplitude sweeps, and the sweeps, benches and
// data-generation runs evaluate thousands of (instance, angles) pairs.
// BatchEvaluator amortizes that work:
//  - the DiagonalHamiltonian (and its integral fast-path table) is
//    precomputed once per instance by MaxCutQaoa and shared by every
//    evaluation;
//  - statevector workspaces are reused across evaluations (one per
//    worker chunk), so a batch makes O(threads) 2^n allocations instead
//    of O(batch);
//  - batch entries are scheduled instance-level with parallel_for while
//    the per-entry amplitude kernels run serially inside the workers
//    (nested parallel_* calls collapse to inline execution), which is
//    the right grain for many small-to-medium states.  When the batch
//    is smaller than the pool AND the states are large enough for
//    amplitude-range sharding (see shards_amplitudes), the grain flips:
//    entries run sequentially on the calling thread and each
//    evaluation's amplitude kernels fan out over the whole pool, so ONE
//    large-n objective evaluation saturates the machine;
//  - every evaluation runs through MaxCutQaoa::state_into and therefore
//    honors the fused/unfused layer-kernel switch
//    (quantum::default_layer_kernel()); the fused default collapses each
//    QAOA layer into a few blocked sweeps instead of n + 1 gate passes.
//
// Contracts:
//  - **Determinism.**  Entry i of the output depends only on entry i of
//    the batch, and the underlying reductions are thread-count
//    independent, so QAOAML_THREADS=1 and =8 produce identical bits.
//  - **Thread-safety.**  The batch entry points (expectations /
//    objectives) parallelize internally and may be called from one
//    thread at a time; the single-shot expectation()/objective() reuse
//    the member workspace and are NOT thread-safe — use one
//    BatchEvaluator per thread.  The referenced MaxCutQaoa is only
//    read.
//  - **Angle units.**  `params` follows core/angles.hpp: 2p radians
//    packed as [gamma_1..gamma_p, beta_1..beta_p].
#ifndef QAOAML_CORE_BATCH_EVALUATOR_HPP
#define QAOAML_CORE_BATCH_EVALUATOR_HPP

#include <span>
#include <vector>

#include "core/qaoa_objective.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml::core {

/// One (instance, angles) evaluation request of a heterogeneous batch.
/// `eval` defaults to exact; a sampled spec carries its own shot budget
/// and measurement-stream seed (`eval.seed`), so the job's value is a
/// pure function of the job — batch order, chunking and thread count
/// can never change a bit.
struct BatchJob {
  const MaxCutQaoa* instance = nullptr;
  std::vector<double> params;
  EvalSpec eval{};
};

/// Evaluates the QAOA cost expectation for batches of angle vectors on
/// one problem instance (or heterogeneous instance batches via the
/// static overload).  The referenced MaxCutQaoa must outlive this.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const MaxCutQaoa& instance);

  const MaxCutQaoa& instance() const { return *instance_; }

  /// <C> for one angle vector, reusing the internal workspace (no
  /// allocation).  Not thread-safe: one BatchEvaluator per thread.
  double expectation(std::span<const double> params);

  /// -<C>: the minimization objective the optimizers consume.
  double objective(std::span<const double> params);

  /// <C> under `spec`, reusing the internal statevector and CDF
  /// workspaces (no allocation after the first sampled call).  Sampled
  /// mode draws from a fresh Rng(spec.seed) every call, so the value is
  /// a pure function of (instance, params, spec).  Not thread-safe.
  double evaluate(std::span<const double> params, const EvalSpec& spec);

  /// <C> for every angle vector in the batch, parallel across entries.
  std::vector<double> expectations(
      std::span<const std::vector<double>> batch) const;

  /// -<C> for every angle vector in the batch.
  std::vector<double> objectives(
      std::span<const std::vector<double>> batch) const;

  /// <C> for every (instance, angles) job; instances may differ in size
  /// and depth.  Each worker chunk reuses one workspace, growing it only
  /// when the qubit count changes.  Ignores the jobs' eval specs
  /// (always exact) — the pre-EvalSpec entry point, kept for callers
  /// that never sample.
  static std::vector<double> expectations(std::span<const BatchJob> jobs);

  /// <C> for every job *under its own EvalSpec*: exact jobs evaluate
  /// like expectations(); sampled jobs draw from a private
  /// Rng(job.eval.seed) with the job's own shot budget.  Per-item
  /// determinism: entry i is a pure function of job i, verified
  /// bit-identical across thread counts and against the sequential
  /// evaluate() path.
  static std::vector<double> evaluations(std::span<const BatchJob> jobs);

  /// Scheduling policy of the batch entry points: true when a batch of
  /// `batch_size` evaluations on up-to-`num_qubits`-qubit states should
  /// run sequentially with amplitude-range sharding INSIDE each
  /// evaluation (batch smaller than the pool, states at or above the
  /// kernels' parallel threshold), false for the classic
  /// one-entry-per-worker fan-out.  Pure function of its arguments —
  /// exposed so tests can pin the crossover; either branch produces
  /// bit-identical values.
  static bool shards_amplitudes(std::size_t batch_size, int num_qubits,
                                int threads);

 private:
  const MaxCutQaoa* instance_;
  quantum::Statevector workspace_;
  std::vector<double> cdf_workspace_;
};

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_BATCH_EVALUATOR_HPP
