#include "quantum/pauli.hpp"

#include <bit>

#include "common/error.hpp"

namespace qaoaml::quantum {

PauliString::PauliString(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 63,
          "PauliString: supports 1..63 qubits");
}

PauliString PauliString::from_label(const std::string& label) {
  require(!label.empty(), "PauliString: empty label");
  PauliString p(static_cast<int>(label.size()));
  for (std::size_t i = 0; i < label.size(); ++i) {
    // Leftmost label char acts on the highest qubit index.
    p.set(static_cast<int>(label.size() - 1 - i), label[i]);
  }
  return p;
}

void PauliString::set(int qubit, char op) {
  require(qubit >= 0 && qubit < num_qubits_, "PauliString: qubit range");
  const std::uint64_t bit = 1ULL << qubit;
  x_mask_ &= ~bit;
  z_mask_ &= ~bit;
  y_mask_ &= ~bit;
  switch (op) {
    case 'I': break;
    case 'X': x_mask_ |= bit; break;
    case 'Y':
      x_mask_ |= bit;
      z_mask_ |= bit;
      y_mask_ |= bit;
      break;
    case 'Z': z_mask_ |= bit; break;
    default:
      throw InvalidArgument("PauliString: operator must be I/X/Y/Z");
  }
}

std::string PauliString::label() const {
  std::string out(static_cast<std::size_t>(num_qubits_), 'I');
  for (int q = 0; q < num_qubits_; ++q) {
    const std::uint64_t bit = 1ULL << q;
    char op = 'I';
    if (y_mask_ & bit) {
      op = 'Y';
    } else if (x_mask_ & bit) {
      op = 'X';
    } else if (z_mask_ & bit) {
      op = 'Z';
    }
    out[static_cast<std::size_t>(num_qubits_ - 1 - q)] = op;
  }
  return out;
}

void PauliString::apply_to(Statevector& state) const {
  require(state.num_qubits() == num_qubits_, "PauliString: qubit mismatch");
  // P|z> = phase(z) |z ^ x_mask>:
  //   Z contributes (-1)^{z & z_mask}; Y contributes an extra i (or -i)
  //   depending on the flipped bit value.
  const std::vector<Complex> amps(state.amplitudes().begin(),
                                  state.amplitudes().end());
  std::vector<Complex> out(amps.size());
  const int y_count = std::popcount(y_mask_);
  // Global factor from Y = i X Z: each Y contributes a factor i.
  Complex y_factor{1.0, 0.0};
  for (int k = 0; k < y_count; ++k) y_factor *= Complex{0.0, 1.0};
  for (std::uint64_t z = 0; z < amps.size(); ++z) {
    const std::uint64_t target = z ^ x_mask_;
    // XZ acting on |z>: Z first (sign from z), then X flips.
    const int sign_bits = std::popcount(z & z_mask_);
    const Complex phase = (sign_bits % 2 == 0) ? Complex{1.0, 0.0}
                                               : Complex{-1.0, 0.0};
    out[target] += y_factor * phase * amps[z];
  }
  state = Statevector::from_amplitudes(std::move(out));
}

double PauliString::expectation(const Statevector& state) const {
  require(state.num_qubits() == num_qubits_, "PauliString: qubit mismatch");
  Statevector transformed = state;
  apply_to(transformed);
  return state.inner_product(transformed).real();
}

bool PauliString::commutes_with(const PauliString& other) const {
  require(other.num_qubits_ == num_qubits_, "PauliString: qubit mismatch");
  // Two Pauli strings commute iff the symplectic product is even.
  const int anti = std::popcount(x_mask_ & other.z_mask_) +
                   std::popcount(z_mask_ & other.x_mask_);
  return anti % 2 == 0;
}

PauliSum::PauliSum(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1, "PauliSum: need at least one qubit");
}

void PauliSum::add(double coefficient, PauliString string) {
  require(string.num_qubits() == num_qubits_, "PauliSum: qubit mismatch");
  terms_.emplace_back(coefficient, std::move(string));
}

double PauliSum::expectation(const Statevector& state) const {
  double acc = 0.0;
  for (const auto& [coefficient, string] : terms_) {
    acc += coefficient * string.expectation(state);
  }
  return acc;
}

bool PauliSum::is_diagonal() const {
  for (const auto& [coefficient, string] : terms_) {
    if (!string.is_diagonal()) return false;
  }
  return true;
}

std::vector<double> PauliSum::diagonal() const {
  require(is_diagonal(), "PauliSum: not diagonal");
  const std::uint64_t dim = 1ULL << num_qubits_;
  std::vector<double> diag(dim, 0.0);
  for (const auto& [coefficient, string] : terms_) {
    for (std::uint64_t z = 0; z < dim; ++z) {
      const int sign_bits = std::popcount(z & string.z_mask());
      diag[z] += (sign_bits % 2 == 0) ? coefficient : -coefficient;
    }
  }
  return diag;
}

}  // namespace qaoaml::quantum
