// Pauli-string observables.
//
// A PauliString is a tensor product of single-qubit I/X/Y/Z operators,
// encoded by an X-mask and a Z-mask (Y = X and Z on the same qubit, with
// the phase bookkeeping handled internally).  A PauliSum is a real
// linear combination of strings — the general observable language on
// top of the statevector simulator (the MaxCut cost operator is the
// special case of a Z-only sum).
#ifndef QAOAML_QUANTUM_PAULI_HPP
#define QAOAML_QUANTUM_PAULI_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "quantum/statevector.hpp"

namespace qaoaml::quantum {

/// Tensor product of Pauli operators over n qubits.
class PauliString {
 public:
  /// Identity on `num_qubits`.
  explicit PauliString(int num_qubits);

  /// Parses a label like "XIZY" (leftmost character = highest qubit,
  /// matching ket notation |q_{n-1} ... q_0>).
  static PauliString from_label(const std::string& label);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t x_mask() const { return x_mask_; }
  std::uint64_t z_mask() const { return z_mask_; }

  /// Sets the operator on one qubit (0='I', 1='X', 2='Y', 3='Z').
  void set(int qubit, char op);

  /// The label ("XIZY" style).
  std::string label() const;

  /// True when the string contains only I and Z (diagonal observable).
  bool is_diagonal() const { return x_mask_ == 0; }

  /// Applies the string to a state (in place).
  void apply_to(Statevector& state) const;

  /// <psi| P |psi>; real for Hermitian P (every Pauli string is).
  double expectation(const Statevector& state) const;

  /// True when the two strings commute.
  bool commutes_with(const PauliString& other) const;

 private:
  int num_qubits_ = 0;
  std::uint64_t x_mask_ = 0;
  std::uint64_t z_mask_ = 0;
  std::uint64_t y_mask_ = 0;  // qubits carrying Y (for the phase factor)
};

/// Real linear combination of Pauli strings.
class PauliSum {
 public:
  explicit PauliSum(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t size() const { return terms_.size(); }

  /// Adds `coefficient * string`; string arity must match.
  void add(double coefficient, PauliString string);

  const std::vector<std::pair<double, PauliString>>& terms() const {
    return terms_;
  }

  /// <psi| H |psi>.
  double expectation(const Statevector& state) const;

  /// True when every term is diagonal.
  bool is_diagonal() const;

  /// The diagonal of a purely-diagonal sum (throws otherwise).
  std::vector<double> diagonal() const;

 private:
  int num_qubits_ = 0;
  std::vector<std::pair<double, PauliString>> terms_;
};

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_PAULI_HPP
