// Single-qubit gate matrices.
//
// Conventions: rotation gates are RX(t) = exp(-i t X / 2), RZ(t) =
// exp(-i t Z / 2), etc., matching the standard circuit-model convention
// (and QuTiP/Qiskit).  The QAOA mixing layer exp(-i beta X) is therefore
// RX(2*beta).
#ifndef QAOAML_QUANTUM_GATES_HPP
#define QAOAML_QUANTUM_GATES_HPP

#include <complex>

namespace qaoaml::quantum {

using Complex = std::complex<double>;

/// Dense 2x2 single-qubit unitary, row-major: m[row][col].
struct Gate1Q {
  Complex m[2][2];
};

namespace gates {

Gate1Q identity();
Gate1Q hadamard();
Gate1Q pauli_x();
Gate1Q pauli_y();
Gate1Q pauli_z();

/// exp(-i theta X / 2)
Gate1Q rx(double theta);
/// exp(-i theta Y / 2)
Gate1Q ry(double theta);
/// exp(-i theta Z / 2)
Gate1Q rz(double theta);
/// diag(1, exp(i phi))
Gate1Q phase(double phi);

/// Product a * b (apply b first).
Gate1Q multiply(const Gate1Q& a, const Gate1Q& b);

/// True when g^dagger g == I within `tol`.
bool is_unitary(const Gate1Q& g, double tol = 1e-12);

/// Max |a_ij - b_ij| ignoring a global phase (aligns the largest entry).
double distance_up_to_phase(const Gate1Q& a, const Gate1Q& b);

}  // namespace gates

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_GATES_HPP
