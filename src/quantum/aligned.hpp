// Over-aligned heap allocation for amplitude buffers.
//
// std::vector<std::complex<double>> only guarantees 16-byte alignment,
// while the explicit SIMD kernels (quantum/simd_kernels.hpp) stream the
// amplitude array in 32- and 64-byte vectors.  The kernels use
// unaligned loads for correctness, but cacheline-aligned buffers keep
// every vector access inside one line and make the alignment guarantee
// testable instead of accidental — tests/test_simd_kernels.cpp fails if
// Statevector data stops being 64-byte aligned while a vector tier is
// active.
#ifndef QAOAML_QUANTUM_ALIGNED_HPP
#define QAOAML_QUANTUM_ALIGNED_HPP

#include <cstddef>
#include <new>

namespace qaoaml::quantum {

/// Alignment of Statevector amplitude storage: one x86 cacheline, which
/// is also one full AVX-512 vector.
inline constexpr std::size_t kAmplitudeAlignment = 64;

/// Minimal C++17 aligned allocator: std::allocator semantics with every
/// allocation aligned to `Alignment` bytes via the over-aligned operator
/// new.  All instances compare equal (stateless), so containers can
/// exchange storage freely.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > max_size()) throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

 private:
  static constexpr std::size_t max_size() {
    return static_cast<std::size_t>(-1) / sizeof(T);
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return false;
}

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_ALIGNED_HPP
