// Dense statevector simulator.
//
// Stores all 2^n complex amplitudes and applies gates in place.  Qubit q
// corresponds to bit q of the basis-state index (little-endian), so basis
// state |z> has qubit 0 in the least-significant bit.
//
// This is the "quantum computer" of the QAOA optimization loop, standing
// in for the paper's QuTiP backend: both produce the exact noiseless
// state and exact expectation values.
//
// Threading: every amplitude-sweep kernel (gate application, fused
// diagonal multiply, expectation/probability reductions) fans out over
// blocked amplitude ranges once the state is large enough to amortize
// dispatch; small states stay serial.  Reductions sum fixed-size block
// partials in block order, so all results are bit-identical for every
// QAOAML_THREADS setting.  Individual Statevector objects are not
// internally synchronized: share them read-only or use one per thread.
#ifndef QAOAML_QUANTUM_STATEVECTOR_HPP
#define QAOAML_QUANTUM_STATEVECTOR_HPP

#include <complex>
#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "quantum/aligned.hpp"
#include "quantum/gates.hpp"

namespace qaoaml::quantum {

/// Amplitude storage: a vector whose heap buffer is 64-byte aligned
/// (one cacheline / one AVX-512 vector) for the explicit SIMD kernels.
using AmpVector = std::vector<Complex, AlignedAllocator<Complex, kAmplitudeAlignment>>;

/// States at or above this dimension run the amplitude kernels on their
/// blocked parallel paths (fixed kParallelGrain blocks over the thread
/// pool); smaller states stay serial — the loops are too short to
/// amortize pool dispatch.  Exported so instance-level schedulers
/// (core/batch_evaluator.cpp) can tell which regime an evaluation is in
/// when choosing between batch-parallel and amplitude-parallel.
inline constexpr std::size_t kAmplitudeParallelDim = std::size_t{2} * kParallelGrain;

/// Dense n-qubit quantum state.
class Statevector {
 public:
  /// |0...0> on `num_qubits` qubits.  Requires 1 <= num_qubits <= 26.
  explicit Statevector(int num_qubits);

  /// Builds a state from explicit amplitudes (length must be a power of
  /// two); the vector is not renormalized — callers own normalization.
  static Statevector from_amplitudes(std::vector<Complex> amplitudes);

  /// The uniform superposition H^n |0...0> — the QAOA input layer —
  /// constructed directly (every amplitude 2^(-n/2)).
  static Statevector uniform(int num_qubits);

  /// Reinitializes this state to uniform(num_qubits) in place, reusing
  /// the amplitude buffer when the dimension already matches.  This is
  /// the allocation-free reset used by the batch-evaluation engine.
  void reset_uniform(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return amps_.size(); }

  /// The raw amplitudes; data() is kAmplitudeAlignment-byte aligned.
  const AmpVector& amplitudes() const { return amps_; }

  /// Applies a single-qubit gate to `target`.
  void apply_gate(const Gate1Q& gate, int target);

  /// Applies `gate` to `target` controlled on `control` being |1>.
  void apply_controlled(const Gate1Q& gate, int control, int target);

  void apply_cnot(int control, int target);
  void apply_cz(int a, int b);

  /// Fast path for diagonal rotations: RZ(theta) on `target`.
  void apply_rz(int target, double theta);

  /// Multiplies amplitude z by exp(-i * angle * diag[z]).  This is the
  /// exact action of exp(-i * angle * C) for a diagonal observable C —
  /// the fused phase-separation layer of QAOA.
  void apply_diagonal_evolution(const std::vector<double>& diag, double angle);

  /// Same as apply_diagonal_evolution but for an integer-valued diagonal
  /// with entries in [0, max_value]: only max_value + 1 distinct phases
  /// occur, so they are precomputed once (a large win for unweighted
  /// MaxCut where diag[z] is the cut size).  The diagonal length and the
  /// entry range are validated before any amplitude is touched; callers
  /// that apply one precomputed diagonal many times (e.g. once per QAOA
  /// layer per objective evaluation) may pass entries_prevalidated =
  /// true to skip the O(2^n) entry-range scan — length and max_value
  /// are still checked.
  void apply_diagonal_evolution_integral(const std::vector<int>& diag,
                                         double angle, int max_value,
                                         bool entries_prevalidated = false);

  /// One fused QAOA layer: exp(-i * angle * C) for the diagonal cost C
  /// followed by the mixer RX(beta) on every qubit, in a few blocked
  /// sweeps instead of num_qubits + 1 gate passes (see
  /// quantum/fused_kernels.hpp).  Matches apply_diagonal_evolution +
  /// per-qubit RX to ~1e-15 per amplitude.
  void apply_qaoa_layer(const std::vector<double>& diag, double gamma,
                        double beta);

  /// Fused layer for an integer-valued diagonal with entries in
  /// [0, max_value]: the phase table and the validation contract
  /// (including entries_prevalidated) are exactly those of
  /// apply_diagonal_evolution_integral.
  void apply_qaoa_layer_integral(const std::vector<int>& diag, double gamma,
                                 int max_value, double beta,
                                 bool entries_prevalidated = false);

  /// Hadamard on every qubit (the QAOA state preparation layer).
  void apply_hadamard_all();

  /// L2 norm of the state (1 for any unitary evolution of |0...0>).
  double norm() const;

  /// |amplitude|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// <psi| diag |psi> for a diagonal observable.  Runs the dispatched
  /// SIMD reduction kernel over fixed-size blocks; the canonical 8-lane
  /// summation tree (quantum/simd_kernels.hpp) makes the result
  /// bit-identical across thread counts AND dispatch tiers.
  double expectation_diagonal(const std::vector<double>& diag) const;

  /// Expectation of Z on `target`: P(bit=0) - P(bit=1).
  double expectation_z(int target) const;

  /// Draws one basis state according to the Born rule (O(2^n) scan).
  std::uint64_t sample(Rng& rng) const;

  /// Draws `shots` basis states.
  std::vector<std::uint64_t> sample(Rng& rng, int shots) const;

  /// Writes the inclusive prefix sums of |amplitude|^2 into `cdf`
  /// (resized to the dimension, reusing its capacity).  States that fit
  /// in one parallel grain block use the plain serial scan; larger
  /// states use a blocked three-pass scan (per-block local prefixes in
  /// parallel, a serial block-offset scan, a parallel offset add) whose
  /// summation structure depends only on the fixed kParallelGrain
  /// partition.  Either way the bits are independent of QAOAML_THREADS
  /// and of the SIMD tier — this is the measurement-determinism anchor
  /// of CDF-inversion sampling.
  void cumulative_probabilities(std::vector<double>& cdf) const;

  /// Inverts a cumulative_probabilities() table at `u` in [0, 1):
  /// returns the first z with cdf[z] >= u (binary search, O(n) per
  /// shot).  For single-block states this is bit-identical to the
  /// linear-scan sample() for the same uniform draw, because the scan's
  /// running sum IS that CDF; larger states' blocked CDF can differ
  /// from the linear scan by final-ulp rounding, deterministically.
  static std::uint64_t sample_cdf(const std::vector<double>& cdf, double u);

  /// <this|other>; states must have equal qubit counts.
  Complex inner_product(const Statevector& other) const;

 private:
  Statevector() = default;
  void check_qubit(int q) const;
  void check_integral_diagonal(const std::vector<int>& diag, int max_value,
                               bool scan_entries) const;

  int num_qubits_ = 0;
  AmpVector amps_;
};

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_STATEVECTOR_HPP
