// Shared primitives of the amplitude kernels (statevector.cpp and
// fused_kernels.cpp).  These are the subtle bits — the Annex-G-avoiding
// complex multiply and the bit-insertion pair indexing — kept in one
// place so the fused and unfused paths cannot silently diverge.
#ifndef QAOAML_QUANTUM_KERNEL_UTIL_HPP
#define QAOAML_QUANTUM_KERNEL_UTIL_HPP

#include <cstddef>

#include "quantum/gates.hpp"

namespace qaoaml::quantum::detail {

/// amp *= (pr + i*pi), with the product expanded to avoid __muldc3
/// (GCC otherwise routes std::complex products through Annex G NaN
/// handling, which dominates the simulator's run time).
inline void multiply_amp(Complex& amp, double pr, double pi) {
  const double ar = amp.real();
  const double ai = amp.imag();
  amp = Complex{ar * pr - ai * pi, ar * pi + ai * pr};
}

/// Index of the k-th basis state whose `target` bit is 0: the low bits
/// below `target` stay in place, the rest shift up one position.
/// `stride` must be 1 << target.
inline std::size_t pair_base(std::size_t k, int target, std::size_t stride) {
  return ((k >> target) << (target + 1)) | (k & (stride - 1));
}

}  // namespace qaoaml::quantum::detail

#endif  // QAOAML_QUANTUM_KERNEL_UTIL_HPP
