// Simulator configuration: which amplitude-kernel path the QAOA
// evolution hot paths take.
//
// The fused path (quantum/fused_kernels.hpp) collapses each QAOA layer
// into a few blocked sweeps; the unfused path applies the diagonal
// phase and then one RX gate pass per qubit.  Both produce the same
// state to ~1e-15 per amplitude (tested to 1e-12 in
// tests/test_fused_kernels.cpp), so the unfused path is kept as the
// verification reference and as a fallback switchable at runtime.
//
// Selection precedence, mirroring the threading knobs in
// common/parallel.hpp: ScopedLayerKernel override > QAOAML_FUSED
// environment variable (0 disables fusion) > fused by default.
#ifndef QAOAML_QUANTUM_SIM_CONFIG_HPP
#define QAOAML_QUANTUM_SIM_CONFIG_HPP

namespace qaoaml::quantum {

/// The two QAOA-layer evaluation paths.
enum class LayerKernel {
  kFused,    ///< blocked fused sweeps (Statevector::apply_qaoa_layer*)
  kUnfused,  ///< diagonal evolution + one RX gate pass per qubit
};

/// Active path: the ScopedLayerKernel override when set, else
/// QAOAML_FUSED=0 selects kUnfused, else kFused.
LayerKernel default_layer_kernel();

/// Convenience: default_layer_kernel() == LayerKernel::kFused.
bool fused_kernels_enabled();

/// RAII override of default_layer_kernel() for the enclosing scope.
/// Takes precedence over QAOAML_FUSED; intended for tests and
/// benchmarks that compare the two paths within one process.
class ScopedLayerKernel {
 public:
  explicit ScopedLayerKernel(LayerKernel kernel);
  ~ScopedLayerKernel();
  ScopedLayerKernel(const ScopedLayerKernel&) = delete;
  ScopedLayerKernel& operator=(const ScopedLayerKernel&) = delete;

 private:
  int previous_;
};

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_SIM_CONFIG_HPP
