// Explicit SIMD amplitude-kernel primitives, one implementation per
// dispatch tier (quantum/dispatch.hpp).
//
// The fused-layer driver (quantum/fused_kernels.cpp) and the diagonal
// expectation reduction (quantum/statevector.cpp) keep all range
// orchestration — tiling, amplitude-range sharding over the thread
// pool, the blocked reduction tree — and delegate the contiguous inner
// loops to the function-pointer table below, selected once per sweep by
// the active tier.
//
// Bit-identity contract: every tier computes, per amplitude, the SAME
// sequence of IEEE-754 double operations as the scalar implementation.
// The vector kernels therefore use separate multiply and add (never
// FMA), flip signs only through exact operations (xor of the sign bit,
// multiplication by +-1.0), and exploit only bitwise-exact algebraic
// identities (commutativity of +, x*(-y) == -(x*y)).  This is what lets
// the differential suite pin AVX2 and AVX-512 against the scalar path
// with == on doubles, not a tolerance, and what keeps every committed
// golden fixture valid on every machine.
//
// Reduction tree: expectation_block reduces one fixed-size block with
// EIGHT independent lane accumulators (lane j sums the terms of
// elements j, j+8, j+16, ... of the block, in index order) combined as
//   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7)).
// The lane count matches one AVX-512 register (two AVX2 registers,
// eight scalar accumulators), so all three tiers realize the identical
// summation tree and the blocked parallel_reduce on top of it stays
// bit-deterministic for every thread and shard count.
#ifndef QAOAML_QUANTUM_SIMD_KERNELS_HPP
#define QAOAML_QUANTUM_SIMD_KERNELS_HPP

#include <cstddef>

#include "quantum/dispatch.hpp"
#include "quantum/gates.hpp"

namespace qaoaml::quantum::simd {

/// Contiguous inner-loop primitives for one dispatch tier.  All lengths
/// are in amplitudes (complex doubles); arrays must not alias except
/// where noted.  Every function tolerates arbitrary (also odd) lengths
/// via scalar tail loops that reuse the identical per-element formulas.
struct KernelTable {
  SimdTier tier;

  /// amps[z] *= exp(-i * gamma * diag[z]) for z in [0, count).  The
  /// phase arguments go through scalar std::cos/std::sin on every tier
  /// (libm is the bit-identity anchor); only the complex multiply is
  /// vectorized.
  void (*phase_general)(Complex* amps, const double* diag, double gamma,
                        std::size_t count);

  /// amps[z] *= phases[diag[z]] for z in [0, count); every diag entry
  /// must index into `phases` (callers validate).
  void (*phase_integral)(Complex* amps, const int* diag,
                         const Complex* phases, std::size_t count);

  /// RX(beta) butterflies for all `m` low qubit levels of one
  /// cache-resident tile of 2^m amplitudes, level order t = 0..m-1,
  /// with c = cos(beta/2), s = sin(beta/2).
  void (*mix_tile)(Complex* tile, int m, double c, double s);

  /// One RX butterfly level over two parallel rows: for j in [0, len),
  /// (p0[j], p1[j]) <- butterfly(p0[j], p1[j]).
  void (*butterfly_pair)(Complex* p0, Complex* p1, std::size_t len, double c,
                         double s);

  /// Two fused RX levels over four parallel rows (the high-qubit quad
  /// sweep): per j, butterflies (p0,p1), (p2,p3), then (p0,p2), (p1,p3)
  /// — exactly the scalar order.
  void (*butterfly_quad)(Complex* p0, Complex* p1, Complex* p2, Complex* p3,
                         std::size_t len, double c, double s);

  /// Canonical 8-lane tree reduction of sum_z |amps[z]|^2 * diag[z]
  /// over one block (see the header comment for the exact tree).
  double (*expectation_block)(const Complex* amps, const double* diag,
                              std::size_t count);
};

/// The table for `tier`; throws InvalidArgument when this build or CPU
/// cannot execute it.
const KernelTable& kernels(SimdTier tier);

/// kernels(active_simd_tier()).
const KernelTable& active_kernels();

}  // namespace qaoaml::quantum::simd

#endif  // QAOAML_QUANTUM_SIMD_KERNELS_HPP
