#include "quantum/fused_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/parallel.hpp"
#include "quantum/kernel_util.hpp"
#include "quantum/simd_kernels.hpp"

namespace qaoaml::quantum::fused {
namespace {

// Parallel grain blocks must contain whole sweep-1 tiles, so tile loops
// never straddle a range boundary.
static_assert(kBlockQubits <= kParallelGrainLog2,
              "sweep-1 tiles must divide a parallel grain block");

/// Sweep 1: phase + low-qubit mixer, tile by tile.  `phase_tile(lo, hi)`
/// applies the diagonal phase to amplitudes [lo, hi); the tile is then
/// still L1-hot for the butterfly levels.
template <typename PhaseTile>
void sweep_low(Complex* amps, std::size_t dim, int m, double c, double s,
               int threads, const simd::KernelTable& kt,
               PhaseTile&& phase_tile) {
  const std::size_t tile_size = std::size_t{1} << m;
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        // Ranges are grain blocks of a power-of-two dimension, so they
        // hold whole tiles (static_assert above).
        for (std::size_t lo = begin; lo < end; lo += tile_size) {
          phase_tile(lo, lo + tile_size);
          kt.mix_tile(amps + lo, m, c, s);
        }
      },
      threads);
}

/// Sweep-2 pass fusing two adjacent high levels t and t+1: the RX (x) RX
/// butterfly over quadruples (i, i+s, i+2s, i+3s) with s = 2^t.  The
/// quadruple index k enumerates basis states with bits t and t+1 clear;
/// contiguous k runs of length s map to stride-1 runs in all four
/// streams.
void mix_high_pair(Complex* amps, std::size_t dim, int t, double c, double s,
                   int threads, const simd::KernelTable& kt) {
  const std::size_t stride = std::size_t{1} << t;
  parallel_for_range(
      dim / 4,
      [&](std::size_t begin, std::size_t end) {
        std::size_t k = begin;
        while (k < end) {
          const std::size_t low = k & (stride - 1);
          const std::size_t len = std::min(end - k, stride - low);
          Complex* p0 = amps + (((k >> t) << (t + 2)) | low);
          Complex* p1 = p0 + stride;
          Complex* p2 = p1 + stride;
          Complex* p3 = p2 + stride;
          kt.butterfly_quad(p0, p1, p2, p3, len, c, s);
          k += len;
        }
      },
      threads);
}

/// Sweep-2 pass for a single leftover high level t.
void mix_high_single(Complex* amps, std::size_t dim, int t, double c, double s,
                     int threads, const simd::KernelTable& kt) {
  const std::size_t stride = std::size_t{1} << t;
  parallel_for_range(
      dim / 2,
      [&](std::size_t begin, std::size_t end) {
        std::size_t k = begin;
        while (k < end) {
          const std::size_t low = k & (stride - 1);
          const std::size_t len = std::min(end - k, stride - low);
          Complex* p0 = amps + detail::pair_base(k, t, stride);
          Complex* p1 = p0 + stride;
          kt.butterfly_pair(p0, p1, len, c, s);
          k += len;
        }
      },
      threads);
}

/// Shared layer skeleton: the kernel table is resolved ONCE per layer
/// (tier selection reads an env var), then every sweep runs that tier.
template <typename PhaseTile>
void apply_layer_impl(Complex* amps, int num_qubits, double beta, int threads,
                      const simd::KernelTable& kt, PhaseTile&& phase_tile) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  const int m = std::min(num_qubits, kBlockQubits);
  const double c = std::cos(beta / 2.0);
  const double s = std::sin(beta / 2.0);
  sweep_low(amps, dim, m, c, s, threads, kt, phase_tile);
  int t = m;
  for (; t + 1 < num_qubits; t += 2) {
    mix_high_pair(amps, dim, t, c, s, threads, kt);
  }
  if (t < num_qubits) mix_high_single(amps, dim, t, c, s, threads, kt);
}

}  // namespace

void apply_layer(Complex* amps, int num_qubits, const double* diag,
                 double gamma, double beta, int threads) {
  const simd::KernelTable& kt = simd::active_kernels();
  apply_layer_impl(amps, num_qubits, beta, threads, kt,
                   [&](std::size_t lo, std::size_t hi) {
                     kt.phase_general(amps + lo, diag + lo, gamma, hi - lo);
                   });
}

void apply_layer_integral(Complex* amps, int num_qubits, const int* diag,
                          const Complex* phases, double beta, int threads) {
  const simd::KernelTable& kt = simd::active_kernels();
  apply_layer_impl(amps, num_qubits, beta, threads, kt,
                   [&](std::size_t lo, std::size_t hi) {
                     kt.phase_integral(amps + lo, diag + lo, phases, hi - lo);
                   });
}

}  // namespace qaoaml::quantum::fused
