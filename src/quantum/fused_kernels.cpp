#include "quantum/fused_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/parallel.hpp"
#include "quantum/kernel_util.hpp"

namespace qaoaml::quantum::fused {
namespace {

using detail::multiply_amp;
using detail::pair_base;

// Parallel grain blocks must contain whole sweep-1 tiles, so tile loops
// never straddle a range boundary.
static_assert(kBlockQubits <= kParallelGrainLog2,
              "sweep-1 tiles must divide a parallel grain block");

/// RX(beta) butterfly with c = cos(beta/2), s = sin(beta/2):
///   a0' = c*a0 - i*s*a1,  a1' = -i*s*a0 + c*a1.
/// Expanded into real arithmetic (4 multiplies) so GCC neither calls
/// __muldc3 nor spills through the generic 2x2 gate path.
inline void rx_butterfly(Complex& amp0, Complex& amp1, double c, double s) {
  const double a0r = amp0.real(), a0i = amp0.imag();
  const double a1r = amp1.real(), a1i = amp1.imag();
  amp0 = Complex{c * a0r + s * a1i, c * a0i - s * a1r};
  amp1 = Complex{c * a1r + s * a0i, c * a1i - s * a0r};
}

/// Mixer butterflies for the `m` low qubits of one cache-resident tile.
inline void mix_low_qubits(Complex* tile, int m, double c, double s) {
  const std::size_t tile_size = std::size_t{1} << m;
  for (int t = 0; t < m; ++t) {
    const std::size_t stride = std::size_t{1} << t;
    for (std::size_t base = 0; base < tile_size; base += 2 * stride) {
      Complex* p0 = tile + base;
      Complex* p1 = p0 + stride;
      for (std::size_t j = 0; j < stride; ++j) {
        rx_butterfly(p0[j], p1[j], c, s);
      }
    }
  }
}

/// Sweep 1: phase + low-qubit mixer, tile by tile.  `phase_tile(lo, hi)`
/// applies the diagonal phase to amplitudes [lo, hi); the tile is then
/// still L1-hot for the butterfly levels.
template <typename PhaseTile>
void sweep_low(Complex* amps, std::size_t dim, int m, double c, double s,
               int threads, PhaseTile&& phase_tile) {
  const std::size_t tile_size = std::size_t{1} << m;
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        // Ranges are grain blocks of a power-of-two dimension, so they
        // hold whole tiles (static_assert above).
        for (std::size_t lo = begin; lo < end; lo += tile_size) {
          phase_tile(lo, lo + tile_size);
          mix_low_qubits(amps + lo, m, c, s);
        }
      },
      threads);
}

/// Sweep-2 pass fusing two adjacent high levels t and t+1: the RX (x) RX
/// butterfly over quadruples (i, i+s, i+2s, i+3s) with s = 2^t.  The
/// quadruple index k enumerates basis states with bits t and t+1 clear;
/// contiguous k runs of length s map to stride-1 runs in all four
/// streams.
void mix_high_pair(Complex* amps, std::size_t dim, int t, double c, double s,
                   int threads) {
  const std::size_t stride = std::size_t{1} << t;
  parallel_for_range(
      dim / 4,
      [&](std::size_t begin, std::size_t end) {
        std::size_t k = begin;
        while (k < end) {
          const std::size_t low = k & (stride - 1);
          const std::size_t len = std::min(end - k, stride - low);
          Complex* p0 = amps + (((k >> t) << (t + 2)) | low);
          Complex* p1 = p0 + stride;
          Complex* p2 = p1 + stride;
          Complex* p3 = p2 + stride;
          for (std::size_t j = 0; j < len; ++j) {
            rx_butterfly(p0[j], p1[j], c, s);  // qubit t
            rx_butterfly(p2[j], p3[j], c, s);
            rx_butterfly(p0[j], p2[j], c, s);  // qubit t+1
            rx_butterfly(p1[j], p3[j], c, s);
          }
          k += len;
        }
      },
      threads);
}

/// Sweep-2 pass for a single leftover high level t.
void mix_high_single(Complex* amps, std::size_t dim, int t, double c, double s,
                     int threads) {
  const std::size_t stride = std::size_t{1} << t;
  parallel_for_range(
      dim / 2,
      [&](std::size_t begin, std::size_t end) {
        std::size_t k = begin;
        while (k < end) {
          const std::size_t low = k & (stride - 1);
          const std::size_t len = std::min(end - k, stride - low);
          Complex* p0 = amps + pair_base(k, t, stride);
          Complex* p1 = p0 + stride;
          for (std::size_t j = 0; j < len; ++j) {
            rx_butterfly(p0[j], p1[j], c, s);
          }
          k += len;
        }
      },
      threads);
}

template <typename PhaseTile>
void apply_layer_impl(Complex* amps, int num_qubits, double beta, int threads,
                      PhaseTile&& phase_tile) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  const int m = std::min(num_qubits, kBlockQubits);
  const double c = std::cos(beta / 2.0);
  const double s = std::sin(beta / 2.0);
  sweep_low(amps, dim, m, c, s, threads, phase_tile);
  int t = m;
  for (; t + 1 < num_qubits; t += 2) mix_high_pair(amps, dim, t, c, s, threads);
  if (t < num_qubits) mix_high_single(amps, dim, t, c, s, threads);
}

}  // namespace

void apply_layer(Complex* amps, int num_qubits, const double* diag,
                 double gamma, double beta, int threads) {
  apply_layer_impl(amps, num_qubits, beta, threads,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t z = lo; z < hi; ++z) {
                       const double phi = -gamma * diag[z];
                       multiply_amp(amps[z], std::cos(phi), std::sin(phi));
                     }
                   });
}

void apply_layer_integral(Complex* amps, int num_qubits, const int* diag,
                          const Complex* phases, double beta, int threads) {
  apply_layer_impl(amps, num_qubits, beta, threads,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t z = lo; z < hi; ++z) {
                       const Complex& p =
                           phases[static_cast<std::size_t>(diag[z])];
                       multiply_amp(amps[z], p.real(), p.imag());
                     }
                   });
}

}  // namespace qaoaml::quantum::fused
