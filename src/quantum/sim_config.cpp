#include "quantum/sim_config.hpp"

#include <atomic>

#include "common/env.hpp"

namespace qaoaml::quantum {
namespace {

// 0 = no override, 1 = fused, 2 = unfused (atomic so overrides made on
// the main thread are visible to pool workers).
std::atomic<int> kernel_override{0};

}  // namespace

LayerKernel default_layer_kernel() {
  switch (kernel_override.load(std::memory_order_relaxed)) {
    case 1:
      return LayerKernel::kFused;
    case 2:
      return LayerKernel::kUnfused;
    default:
      break;
  }
  return env_int("QAOAML_FUSED", 1) != 0 ? LayerKernel::kFused
                                         : LayerKernel::kUnfused;
}

bool fused_kernels_enabled() {
  return default_layer_kernel() == LayerKernel::kFused;
}

ScopedLayerKernel::ScopedLayerKernel(LayerKernel kernel)
    : previous_(kernel_override.exchange(
          kernel == LayerKernel::kFused ? 1 : 2, std::memory_order_relaxed)) {}

ScopedLayerKernel::~ScopedLayerKernel() {
  kernel_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace qaoaml::quantum
