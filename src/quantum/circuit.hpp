// Parametric quantum circuit intermediate representation.
//
// A Circuit is an ordered list of gate operations; rotation angles may be
// bound to entries of an external parameter vector through affine
// expressions (angle = offset + coeff * params[index]).  The QAOA ansatz
// builds one Circuit per (graph, depth) and re-simulates it with new
// parameters on every optimizer iteration.
#ifndef QAOAML_QUANTUM_CIRCUIT_HPP
#define QAOAML_QUANTUM_CIRCUIT_HPP

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "quantum/statevector.hpp"

namespace qaoaml::quantum {

/// Gate vocabulary of the IR.
enum class GateKind {
  kH,
  kX,
  kY,
  kZ,
  kRx,
  kRy,
  kRz,
  kPhase,
  kCnot,
  kCz,
};

/// True for RX/RY/RZ/Phase.
bool is_parametric(GateKind kind);

/// True for CNOT/CZ.
bool is_two_qubit(GateKind kind);

/// Short mnemonic ("h", "rx", "cnot", ...).
std::string gate_name(GateKind kind);

/// Affine angle expression: offset + coeff * params[index]; a negative
/// index means the angle is the constant `offset`.
struct ParamExpr {
  int index = -1;
  double coeff = 1.0;
  double offset = 0.0;

  /// Constant angle.
  static ParamExpr constant(double value) { return {-1, 0.0, value}; }

  /// coeff * params[index] + offset.
  static ParamExpr bound(int index, double coeff = 1.0, double offset = 0.0) {
    return {index, coeff, offset};
  }

  /// Evaluates against a bound parameter vector.
  double evaluate(std::span<const double> params) const;
};

/// One gate application.
struct Operation {
  GateKind kind = GateKind::kH;
  int q0 = 0;              ///< target (1q) or control (2q)
  int q1 = -1;             ///< target for 2q gates
  ParamExpr angle{};       ///< meaningful only for parametric kinds
};

/// Ordered gate list over a fixed qubit count.
class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Operation>& operations() const { return ops_; }

  /// Number of external parameters referenced (max index + 1).
  int num_parameters() const { return num_parameters_; }

  void h(int q);
  void x(int q);
  void y(int q);
  void z(int q);
  void rx(int q, ParamExpr angle);
  void ry(int q, ParamExpr angle);
  void rz(int q, ParamExpr angle);
  void phase(int q, ParamExpr angle);
  void cnot(int control, int target);
  void cz(int a, int b);

  /// Appends all operations of `other` (qubit counts must match).
  void append(const Circuit& other);

  /// Applies the circuit to `state`; `params` must cover num_parameters().
  void apply_to(Statevector& state, std::span<const double> params) const;

  /// Simulates from |0...0>.
  Statevector simulate(std::span<const double> params) const;

  /// Number of operations of the given kind.
  std::size_t count(GateKind kind) const;

  /// ASAP schedule depth (each gate occupies one level on its qubits).
  int depth() const;

  /// Human-readable one-line-per-gate listing.
  std::string to_string() const;

 private:
  void push(GateKind kind, int q0, int q1, ParamExpr angle);
  void check_qubit(int q) const;

  int num_qubits_ = 0;
  int num_parameters_ = 0;
  std::vector<Operation> ops_;
};

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_CIRCUIT_HPP
