// Fused QAOA layer kernels.
//
// One QAOA layer is exp(-i * beta/2 * sum_q X_q) * exp(-i * gamma * C):
// a diagonal phase followed by the mixer RX(beta) on every qubit.  The
// gate-by-gate route costs n + 1 full passes over the 2^n amplitudes —
// a memory-bound disaster once the state outgrows cache.  These kernels
// restructure the layer into a handful of passes:
//
//  - Sweep 1 walks the array once in cache-resident tiles of
//    2^kBlockQubits amplitudes, applying the diagonal phase and the
//    butterfly levels of the kBlockQubits low ("local") qubits while the
//    tile is hot in L1.
//  - Sweep 2 handles the remaining high qubits two levels per pass (a
//    fused RX (x) RX four-way butterfly over quadruples of rows), with
//    stride-1 inner loops over four contiguous streams so the compiler
//    auto-vectorizes.
//
// For n <= kBlockQubits + 2 the whole layer is one or two passes; in
// general it is 1 + ceil((n - kBlockQubits) / 2) instead of n + 1.
//
// The contiguous inner loops of every sweep run through the runtime-
// dispatched SIMD kernel table (quantum/simd_kernels.hpp): explicit
// AVX2 / AVX-512 code where the CPU has it, the original scalar loops
// otherwise, selected once per layer by quantum/dispatch.hpp.
//
// Determinism: every kernel is element-wise independent (no reductions),
// and all dispatch tiers are bit-identical by construction, so results
// are bit-identical for every thread count, partition, and SIMD tier.
#ifndef QAOAML_QUANTUM_FUSED_KERNELS_HPP
#define QAOAML_QUANTUM_FUSED_KERNELS_HPP

#include "quantum/gates.hpp"

namespace qaoaml::quantum::fused {

/// Low qubits handled inside one cache-resident tile by sweep 1:
/// 2^11 amplitudes = 32 KiB, sized to a typical L1d.  Must stay at most
/// kParallelGrainLog2 so parallel grain blocks contain whole tiles.
inline constexpr int kBlockQubits = 11;

/// Fused layer over a general diagonal: amps[z] *= exp(-i*gamma*diag[z]),
/// then RX(beta) on every qubit.  `amps` and `diag` hold 2^num_qubits
/// entries; the arrays must not alias.
void apply_layer(Complex* amps, int num_qubits, const double* diag,
                 double gamma, double beta, int threads);

/// Fused layer over an integer diagonal with a precomputed phase table:
/// amps[z] *= phases[diag[z]], then RX(beta) on every qubit.  Every
/// diag[z] must be a valid index into `phases` (callers validate).
void apply_layer_integral(Complex* amps, int num_qubits, const int* diag,
                          const Complex* phases, double beta, int threads);

}  // namespace qaoaml::quantum::fused

#endif  // QAOAML_QUANTUM_FUSED_KERNELS_HPP
