// Runtime SIMD dispatch for the amplitude kernels.
//
// The fused QAOA sweeps (quantum/fused_kernels.hpp) and the diagonal
// expectation reduction have explicit AVX2 and AVX-512 implementations
// (quantum/simd_kernels.hpp) next to the portable scalar code.  This
// header owns tier *selection*: the highest instruction set the CPU
// reports via CPUID is picked at runtime, so one portable binary runs
// the widest vectors the machine has — the Intel-QS / qHiPSTER shape.
//
// Every tier computes bit-identical results: the vector kernels perform
// the same sequence of IEEE-754 operations per amplitude as the scalar
// fallback (no FMA contraction, no reassociation outside the canonical
// reduction tree), so switching tiers can never move a committed
// fixture by a single bit.  The differential suite
// (tests/test_simd_kernels.cpp) enforces this.
//
// Selection precedence, mirroring the threading and layer-kernel knobs:
// ScopedSimdTier override > QAOAML_SIMD environment variable
// (scalar|avx2|avx512) > highest CPU-supported tier.  Forcing a tier
// the CPU cannot execute throws instead of crashing on SIGILL later.
#ifndef QAOAML_QUANTUM_DISPATCH_HPP
#define QAOAML_QUANTUM_DISPATCH_HPP

#include <optional>
#include <string_view>

namespace qaoaml::quantum {

/// The available amplitude-kernel instruction tiers, widest last.
enum class SimdTier {
  kScalar,  ///< portable fused sweeps (auto-vectorized by the compiler)
  kAvx2,    ///< 256-bit explicit kernels (4 doubles / 2 amplitudes)
  kAvx512,  ///< 512-bit explicit kernels (8 doubles / 4 amplitudes)
};

/// Widest tier this CPU supports, probed once via CPUID and cached.
/// kAvx512 additionally requires AVX512DQ (for the packed-double
/// bitwise ops the kernels use); every AVX-512 server core since
/// Skylake-X has it.  Non-x86 builds always report kScalar.
SimdTier detected_simd_tier();

/// True when `tier` can execute on this CPU (kScalar always can).
bool simd_tier_supported(SimdTier tier);

/// Active tier: the ScopedSimdTier override when set, else QAOAML_SIMD
/// when set (throws InvalidArgument on an unknown value or on a tier
/// this CPU cannot execute — a typo must not silently change what a
/// benchmark measures), else detected_simd_tier().
SimdTier active_simd_tier();

/// "scalar" | "avx2" | "avx512".
const char* to_string(SimdTier tier);

/// Parses the QAOAML_SIMD grammar; nullopt on anything else.
std::optional<SimdTier> parse_simd_tier(std::string_view text);

/// RAII override of active_simd_tier() for the enclosing scope.  Takes
/// precedence over QAOAML_SIMD; throws InvalidArgument when the CPU
/// cannot execute the requested tier.  Intended for tests and
/// benchmarks that compare tiers within one process.
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier);
  ~ScopedSimdTier();
  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  int previous_;
};

}  // namespace qaoaml::quantum

#endif  // QAOAML_QUANTUM_DISPATCH_HPP
