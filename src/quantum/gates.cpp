#include "quantum/gates.hpp"

#include <algorithm>
#include <cmath>

namespace qaoaml::quantum::gates {

namespace {
constexpr Complex kI{0.0, 1.0};
}

Gate1Q identity() { return {{{1, 0}, {0, 1}}}; }

Gate1Q hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return {{{s, s}, {s, -s}}};
}

Gate1Q pauli_x() { return {{{0, 1}, {1, 0}}}; }

Gate1Q pauli_y() { return {{{0, -kI}, {kI, 0}}}; }

Gate1Q pauli_z() { return {{{1, 0}, {0, -1}}}; }

Gate1Q rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {{{c, -kI * s}, {-kI * s, c}}};
}

Gate1Q ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {{{c, -s}, {s, c}}};
}

Gate1Q rz(double theta) {
  const Complex lo = std::exp(-kI * (theta / 2.0));
  const Complex hi = std::exp(kI * (theta / 2.0));
  return {{{lo, 0}, {0, hi}}};
}

Gate1Q phase(double phi) { return {{{1, 0}, {0, std::exp(kI * phi)}}}; }

Gate1Q multiply(const Gate1Q& a, const Gate1Q& b) {
  Gate1Q out{};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      out.m[r][c] = a.m[r][0] * b.m[0][c] + a.m[r][1] * b.m[1][c];
    }
  }
  return out;
}

bool is_unitary(const Gate1Q& g, double tol) {
  // g^dagger * g must be the identity.
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      Complex acc = 0.0;
      for (int k = 0; k < 2; ++k) acc += std::conj(g.m[k][r]) * g.m[k][c];
      const Complex expected = (r == c) ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
      if (std::abs(acc - expected) > tol) return false;
    }
  }
  return true;
}

double distance_up_to_phase(const Gate1Q& a, const Gate1Q& b) {
  // Align phases on the largest-magnitude entry of a.
  int br = 0;
  int bc = 0;
  double best = 0.0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      if (std::abs(a.m[r][c]) > best) {
        best = std::abs(a.m[r][c]);
        br = r;
        bc = c;
      }
    }
  }
  Complex phase{1.0, 0.0};
  if (std::abs(b.m[br][bc]) > 1e-15 && best > 1e-15) {
    phase = (a.m[br][bc] / std::abs(a.m[br][bc])) /
            (b.m[br][bc] / std::abs(b.m[br][bc]));
  }
  double dist = 0.0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      dist = std::max(dist, std::abs(a.m[r][c] - phase * b.m[r][c]));
    }
  }
  return dist;
}

}  // namespace qaoaml::quantum::gates
