#include "quantum/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace qaoaml::quantum {

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 26,
          "Statevector: supports 1..26 qubits");
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

Statevector Statevector::from_amplitudes(std::vector<Complex> amplitudes) {
  require(!amplitudes.empty(), "Statevector: empty amplitude vector");
  int qubits = 0;
  while ((std::size_t{1} << qubits) < amplitudes.size()) ++qubits;
  require(std::size_t{1} << qubits == amplitudes.size(),
          "Statevector: amplitude count must be a power of two");
  require(qubits >= 1, "Statevector: need at least one qubit");
  Statevector sv;
  sv.num_qubits_ = qubits;
  sv.amps_ = std::move(amplitudes);
  return sv;
}

Statevector Statevector::uniform(int num_qubits) {
  Statevector sv(num_qubits);
  const double amp = 1.0 / std::sqrt(static_cast<double>(sv.dimension()));
  std::fill(sv.amps_.begin(), sv.amps_.end(), Complex{amp, 0.0});
  return sv;
}

void Statevector::check_qubit(int q) const {
  require(q >= 0 && q < num_qubits_, "Statevector: qubit index out of range");
}

void Statevector::apply_gate(const Gate1Q& gate, int target) {
  check_qubit(target);
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  // Complex arithmetic expanded into real/imaginary parts: GCC otherwise
  // routes std::complex products through __muldc3 (Annex G NaN handling),
  // which dominates the simulator's run time.
  const double g00r = gate.m[0][0].real(), g00i = gate.m[0][0].imag();
  const double g01r = gate.m[0][1].real(), g01i = gate.m[0][1].imag();
  const double g10r = gate.m[1][0].real(), g10i = gate.m[1][0].imag();
  const double g11r = gate.m[1][1].real(), g11i = gate.m[1][1].imag();
  // Iterate over pairs (z, z | stride) with bit `target` = 0 in z.
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = base + offset;
      const std::size_t i1 = i0 + stride;
      const double a0r = amps_[i0].real(), a0i = amps_[i0].imag();
      const double a1r = amps_[i1].real(), a1i = amps_[i1].imag();
      amps_[i0] = Complex{g00r * a0r - g00i * a0i + g01r * a1r - g01i * a1i,
                          g00r * a0i + g00i * a0r + g01r * a1i + g01i * a1r};
      amps_[i1] = Complex{g10r * a0r - g10i * a0i + g11r * a1r - g11i * a1i,
                          g10r * a0i + g10i * a0r + g11r * a1i + g11i * a1r};
    }
  }
}

void Statevector::apply_controlled(const Gate1Q& gate, int control,
                                   int target) {
  check_qubit(control);
  check_qubit(target);
  require(control != target,
          "Statevector: control and target must be distinct");
  const std::size_t cmask = std::size_t{1} << control;
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = base + offset;
      if ((i0 & cmask) == 0) continue;
      const std::size_t i1 = i0 + stride;
      const Complex a0 = amps_[i0];
      const Complex a1 = amps_[i1];
      amps_[i0] = gate.m[0][0] * a0 + gate.m[0][1] * a1;
      amps_[i1] = gate.m[1][0] * a0 + gate.m[1][1] * a1;
    }
  }
}

void Statevector::apply_cnot(int control, int target) {
  check_qubit(control);
  check_qubit(target);
  require(control != target,
          "Statevector: control and target must be distinct");
  const std::size_t cmask = std::size_t{1} << control;
  const std::size_t tmask = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  for (std::size_t z = 0; z < dim; ++z) {
    // Swap each |c=1, t=0> amplitude with its |c=1, t=1> partner once.
    if ((z & cmask) != 0 && (z & tmask) == 0) {
      std::swap(amps_[z], amps_[z | tmask]);
    }
  }
}

void Statevector::apply_cz(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  require(a != b, "Statevector: CZ qubits must be distinct");
  const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
  const std::size_t dim = amps_.size();
  for (std::size_t z = 0; z < dim; ++z) {
    if ((z & mask) == mask) amps_[z] = -amps_[z];
  }
}

namespace {
/// amps[z] *= phase, with the product expanded to avoid __muldc3.
inline void multiply_amp(Complex& amp, double pr, double pi) {
  const double ar = amp.real();
  const double ai = amp.imag();
  amp = Complex{ar * pr - ai * pi, ar * pi + ai * pr};
}
}  // namespace

void Statevector::apply_rz(int target, double theta) {
  check_qubit(target);
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  const std::size_t mask = std::size_t{1} << target;
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    // bit = 0 -> exp(-i theta/2); bit = 1 -> exp(+i theta/2)
    multiply_amp(amps_[z], c, ((z & mask) == 0) ? -s : s);
  }
}

void Statevector::apply_diagonal_evolution(const std::vector<double>& diag,
                                           double angle) {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    const double phi = -angle * diag[z];
    multiply_amp(amps_[z], std::cos(phi), std::sin(phi));
  }
}

void Statevector::apply_diagonal_evolution_integral(
    const std::vector<int>& diag, double angle, int max_value) {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  require(max_value >= 0, "Statevector: max_value must be non-negative");
  // phases[k] = exp(-i * k * angle): only max_value + 1 distinct phases.
  std::vector<Complex> phases(static_cast<std::size_t>(max_value) + 1);
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const double phi = -angle * static_cast<double>(k);
    phases[k] = Complex{std::cos(phi), std::sin(phi)};
  }
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    const Complex& p = phases[static_cast<std::size_t>(diag[z])];
    multiply_amp(amps_[z], p.real(), p.imag());
  }
}

void Statevector::apply_hadamard_all() {
  const Gate1Q h = gates::hadamard();
  for (int q = 0; q < num_qubits_; ++q) apply_gate(h, q);
}

double Statevector::norm() const {
  double acc = 0.0;
  for (const Complex& a : amps_) acc += std::norm(a);
  return std::sqrt(acc);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> probs(amps_.size());
  for (std::size_t z = 0; z < amps_.size(); ++z) probs[z] = std::norm(amps_[z]);
  return probs;
}

double Statevector::expectation_diagonal(const std::vector<double>& diag) const {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  double acc = 0.0;
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    acc += std::norm(amps_[z]) * diag[z];
  }
  return acc;
}

double Statevector::expectation_z(int target) const {
  check_qubit(target);
  const std::size_t mask = std::size_t{1} << target;
  double acc = 0.0;
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    const double p = std::norm(amps_[z]);
    acc += ((z & mask) == 0) ? p : -p;
  }
  return acc;
}

std::uint64_t Statevector::sample(Rng& rng) const {
  double u = rng.uniform();
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    u -= std::norm(amps_[z]);
    if (u <= 0.0) return z;
  }
  return amps_.size() - 1;  // numerical slack: return the last state
}

std::vector<std::uint64_t> Statevector::sample(Rng& rng, int shots) const {
  require(shots >= 0, "Statevector::sample: shots must be non-negative");
  std::vector<std::uint64_t> out(static_cast<std::size_t>(shots));
  for (auto& z : out) z = sample(rng);
  return out;
}

Complex Statevector::inner_product(const Statevector& other) const {
  require(num_qubits_ == other.num_qubits_,
          "Statevector::inner_product: qubit count mismatch");
  Complex acc{0.0, 0.0};
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    acc += std::conj(amps_[z]) * other.amps_[z];
  }
  return acc;
}

}  // namespace qaoaml::quantum
