#include "quantum/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/fused_kernels.hpp"
#include "quantum/kernel_util.hpp"
#include "quantum/simd_kernels.hpp"

namespace qaoaml::quantum {
namespace {

using detail::multiply_amp;
using detail::pair_base;

inline int kernel_threads(std::size_t dim) {
  return dim >= kAmplitudeParallelDim ? default_thread_count() : 1;
}

}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 26,
          "Statevector: supports 1..26 qubits");
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

Statevector Statevector::from_amplitudes(std::vector<Complex> amplitudes) {
  require(!amplitudes.empty(), "Statevector: empty amplitude vector");
  int qubits = 0;
  while ((std::size_t{1} << qubits) < amplitudes.size()) ++qubits;
  require(std::size_t{1} << qubits == amplitudes.size(),
          "Statevector: amplitude count must be a power of two");
  require(qubits >= 1, "Statevector: need at least one qubit");
  Statevector sv;
  sv.num_qubits_ = qubits;
  // Copy into the aligned allocator's storage: the public signature
  // stays std::vector, the internal buffer gains the 64-byte guarantee.
  sv.amps_.assign(amplitudes.begin(), amplitudes.end());
  return sv;
}

Statevector Statevector::uniform(int num_qubits) {
  Statevector sv(num_qubits);
  sv.reset_uniform(num_qubits);
  return sv;
}

void Statevector::reset_uniform(int num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 26,
          "Statevector: supports 1..26 qubits");
  num_qubits_ = num_qubits;
  const std::size_t dim = std::size_t{1} << num_qubits;
  if (amps_.size() != dim) amps_.resize(dim);
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim));
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        std::fill(amps_.begin() + static_cast<std::ptrdiff_t>(begin),
                  amps_.begin() + static_cast<std::ptrdiff_t>(end),
                  Complex{amp, 0.0});
      },
      kernel_threads(dim));
}

void Statevector::check_qubit(int q) const {
  require(q >= 0 && q < num_qubits_, "Statevector: qubit index out of range");
}

void Statevector::apply_gate(const Gate1Q& gate, int target) {
  check_qubit(target);
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  // Complex arithmetic expanded into real/imaginary parts: GCC otherwise
  // routes std::complex products through __muldc3 (Annex G NaN handling),
  // which dominates the simulator's run time.
  const double g00r = gate.m[0][0].real(), g00i = gate.m[0][0].imag();
  const double g01r = gate.m[0][1].real(), g01i = gate.m[0][1].imag();
  const double g10r = gate.m[1][0].real(), g10i = gate.m[1][0].imag();
  const double g11r = gate.m[1][1].real(), g11i = gate.m[1][1].imag();
  // Each pair (i0, i0 | stride) is touched by exactly one index k, so
  // blocks write disjoint amplitude sets.
  parallel_for_range(
      dim / 2,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::size_t i0 = pair_base(k, target, stride);
          const std::size_t i1 = i0 + stride;
          const double a0r = amps_[i0].real(), a0i = amps_[i0].imag();
          const double a1r = amps_[i1].real(), a1i = amps_[i1].imag();
          amps_[i0] =
              Complex{g00r * a0r - g00i * a0i + g01r * a1r - g01i * a1i,
                      g00r * a0i + g00i * a0r + g01r * a1i + g01i * a1r};
          amps_[i1] =
              Complex{g10r * a0r - g10i * a0i + g11r * a1r - g11i * a1i,
                      g10r * a0i + g10i * a0r + g11r * a1i + g11i * a1r};
        }
      },
      kernel_threads(dim));
}

void Statevector::apply_controlled(const Gate1Q& gate, int control,
                                   int target) {
  check_qubit(control);
  check_qubit(target);
  require(control != target,
          "Statevector: control and target must be distinct");
  const std::size_t cmask = std::size_t{1} << control;
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  parallel_for_range(
      dim / 2,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::size_t i0 = pair_base(k, target, stride);
          if ((i0 & cmask) == 0) continue;
          const std::size_t i1 = i0 + stride;
          const Complex a0 = amps_[i0];
          const Complex a1 = amps_[i1];
          amps_[i0] = gate.m[0][0] * a0 + gate.m[0][1] * a1;
          amps_[i1] = gate.m[1][0] * a0 + gate.m[1][1] * a1;
        }
      },
      kernel_threads(dim));
}

void Statevector::apply_cnot(int control, int target) {
  check_qubit(control);
  check_qubit(target);
  require(control != target,
          "Statevector: control and target must be distinct");
  const std::size_t cmask = std::size_t{1} << control;
  const std::size_t tmask = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  // Swap each |c=1, t=0> amplitude with its |c=1, t=1> partner once.
  parallel_for_range(
      dim / 2,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::size_t i0 = pair_base(k, target, tmask);
          if ((i0 & cmask) != 0) std::swap(amps_[i0], amps_[i0 | tmask]);
        }
      },
      kernel_threads(dim));
}

void Statevector::apply_cz(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  require(a != b, "Statevector: CZ qubits must be distinct");
  const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
  const std::size_t dim = amps_.size();
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t z = begin; z < end; ++z) {
          if ((z & mask) == mask) amps_[z] = -amps_[z];
        }
      },
      kernel_threads(dim));
}

void Statevector::apply_rz(int target, double theta) {
  check_qubit(target);
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  const std::size_t mask = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t z = begin; z < end; ++z) {
          // bit = 0 -> exp(-i theta/2); bit = 1 -> exp(+i theta/2)
          multiply_amp(amps_[z], c, ((z & mask) == 0) ? -s : s);
        }
      },
      kernel_threads(dim));
}

void Statevector::apply_diagonal_evolution(const std::vector<double>& diag,
                                           double angle) {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  const std::size_t dim = amps_.size();
  const simd::KernelTable& kt = simd::active_kernels();
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        kt.phase_general(amps_.data() + begin, diag.data() + begin, angle,
                         end - begin);
      },
      kernel_threads(dim));
}

/// Validates an integer diagonal before any amplitude is touched: the
/// length must equal the state dimension and every entry must index the
/// [0, max_value] phase table (an out-of-range entry would read past the
/// table — silent corruption in a fast path, so it is rejected loudly).
/// The entry scan is O(2^n); hot paths reusing one precomputed diagonal
/// skip it via scan_entries = false.
void Statevector::check_integral_diagonal(const std::vector<int>& diag,
                                          int max_value,
                                          bool scan_entries) const {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  require(max_value >= 0, "Statevector: max_value must be non-negative");
  if (!scan_entries) return;
  const std::size_t bad = parallel_reduce(
      diag.size(), std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::size_t count = 0;
        for (std::size_t z = begin; z < end; ++z) {
          if (diag[z] < 0 || diag[z] > max_value) ++count;
        }
        return count;
      },
      kernel_threads(diag.size()));
  require(bad == 0,
          "Statevector: integral diagonal entry outside [0, max_value]");
}

/// phases[k] = exp(-i * k * angle): only max_value + 1 distinct phases.
static std::vector<Complex> integral_phase_table(double angle, int max_value) {
  std::vector<Complex> phases(static_cast<std::size_t>(max_value) + 1);
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const double phi = -angle * static_cast<double>(k);
    phases[k] = Complex{std::cos(phi), std::sin(phi)};
  }
  return phases;
}

void Statevector::apply_diagonal_evolution_integral(
    const std::vector<int>& diag, double angle, int max_value,
    bool entries_prevalidated) {
  check_integral_diagonal(diag, max_value, !entries_prevalidated);
  const std::vector<Complex> phases = integral_phase_table(angle, max_value);
  const std::size_t dim = amps_.size();
  const simd::KernelTable& kt = simd::active_kernels();
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        kt.phase_integral(amps_.data() + begin, diag.data() + begin,
                          phases.data(), end - begin);
      },
      kernel_threads(dim));
}

void Statevector::apply_qaoa_layer(const std::vector<double>& diag,
                                   double gamma, double beta) {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  fused::apply_layer(amps_.data(), num_qubits_, diag.data(), gamma, beta,
                     kernel_threads(amps_.size()));
}

void Statevector::apply_qaoa_layer_integral(const std::vector<int>& diag,
                                            double gamma, int max_value,
                                            double beta,
                                            bool entries_prevalidated) {
  check_integral_diagonal(diag, max_value, !entries_prevalidated);
  const std::vector<Complex> phases = integral_phase_table(gamma, max_value);
  fused::apply_layer_integral(amps_.data(), num_qubits_, diag.data(),
                              phases.data(), beta,
                              kernel_threads(amps_.size()));
}

void Statevector::apply_hadamard_all() {
  const Gate1Q h = gates::hadamard();
  for (int q = 0; q < num_qubits_; ++q) apply_gate(h, q);
}

double Statevector::norm() const {
  const std::size_t dim = amps_.size();
  const double acc = parallel_reduce(
      dim, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t z = begin; z < end; ++z) partial += std::norm(amps_[z]);
        return partial;
      },
      kernel_threads(dim));
  return std::sqrt(acc);
}

std::vector<double> Statevector::probabilities() const {
  const std::size_t dim = amps_.size();
  std::vector<double> probs(dim);
  parallel_for_range(
      dim,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t z = begin; z < end; ++z) probs[z] = std::norm(amps_[z]);
      },
      kernel_threads(dim));
  return probs;
}

double Statevector::expectation_diagonal(const std::vector<double>& diag) const {
  require(diag.size() == amps_.size(),
          "Statevector: diagonal length must equal dimension");
  const std::size_t dim = amps_.size();
  const simd::KernelTable& kt = simd::active_kernels();
  // Block partials use the canonical 8-lane tree inside the dispatched
  // kernel and are combined in block order by parallel_reduce, so the
  // result is bit-identical for every thread count and SIMD tier.
  return parallel_reduce(
      dim, 0.0,
      [&](std::size_t begin, std::size_t end) {
        return kt.expectation_block(amps_.data() + begin, diag.data() + begin,
                                    end - begin);
      },
      kernel_threads(dim));
}

double Statevector::expectation_z(int target) const {
  check_qubit(target);
  const std::size_t mask = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  return parallel_reduce(
      dim, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t z = begin; z < end; ++z) {
          const double p = std::norm(amps_[z]);
          partial += ((z & mask) == 0) ? p : -p;
        }
        return partial;
      },
      kernel_threads(dim));
}

std::uint64_t Statevector::sample(Rng& rng) const {
  double u = rng.uniform();
  for (std::size_t z = 0; z < amps_.size(); ++z) {
    u -= std::norm(amps_[z]);
    if (u <= 0.0) return z;
  }
  return amps_.size() - 1;  // numerical slack: return the last state
}

std::vector<std::uint64_t> Statevector::sample(Rng& rng, int shots) const {
  require(shots >= 0, "Statevector::sample: shots must be non-negative");
  std::vector<std::uint64_t> out(static_cast<std::size_t>(shots));
  for (auto& z : out) z = sample(rng);
  return out;
}

void Statevector::cumulative_probabilities(std::vector<double>& cdf) const {
  const std::size_t dim = amps_.size();
  cdf.resize(dim);
  const std::size_t blocks = (dim + kParallelGrain - 1) / kParallelGrain;
  if (blocks <= 1) {
    // Serial left-to-right accumulation: cdf[z] equals the running sum
    // of the linear-scan sample() bit for bit, for every thread count.
    // Every committed sampled fixture lives in this regime, so the
    // blocked path below can never move their bits.
    double acc = 0.0;
    for (std::size_t z = 0; z < dim; ++z) {
      acc += std::norm(amps_[z]);
      cdf[z] = acc;
    }
    return;
  }
  // Blocked three-pass scan over the fixed kParallelGrain partition.
  // The passes iterate explicit BLOCK indices through parallel_for, not
  // parallel_for_range: the latter's single-thread fast path hands the
  // body one range covering everything, which would silently turn pass 1
  // into a global prefix at QAOAML_THREADS=1 and a per-block prefix at
  // =8 — different bits.  With the partition fixed here, the summation
  // structure depends only on the block layout, so the bits are
  // deterministic for every thread count, and one large-n evaluation
  // parallelizes its CDF build instead of serializing ~2^n additions.
  const int threads = kernel_threads(dim);
  // Pass 1: local prefix sums within each block, in parallel.
  parallel_for(
      blocks,
      [&](std::size_t b) {
        const std::size_t begin = b * kParallelGrain;
        const std::size_t end = std::min(dim, begin + kParallelGrain);
        double acc = 0.0;
        for (std::size_t z = begin; z < end; ++z) {
          acc += std::norm(amps_[z]);
          cdf[z] = acc;
        }
      },
      threads);
  // Pass 2: serial scan of the block totals into starting offsets.
  std::vector<double> offset(blocks);
  double acc = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    offset[b] = acc;
    const std::size_t last = std::min(dim, (b + 1) * kParallelGrain) - 1;
    acc += cdf[last];
  }
  // Pass 3: shift each block by its offset, in parallel.  Block 0 keeps
  // its exact pass-1 bits — its offset is zero by construction.
  parallel_for(
      blocks - 1,
      [&](std::size_t i) {
        const std::size_t b = i + 1;
        const std::size_t begin = b * kParallelGrain;
        const std::size_t end = std::min(dim, begin + kParallelGrain);
        const double off = offset[b];
        for (std::size_t z = begin; z < end; ++z) cdf[z] += off;
      },
      threads);
}

std::uint64_t Statevector::sample_cdf(const std::vector<double>& cdf,
                                      double u) {
  require(!cdf.empty(), "Statevector::sample_cdf: empty CDF");
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  // Numerical slack: cdf.back() can fall a few ulps short of 1, so a
  // draw past it lands on the last state, matching the linear scan.
  if (it == cdf.end()) return cdf.size() - 1;
  return static_cast<std::uint64_t>(it - cdf.begin());
}

Complex Statevector::inner_product(const Statevector& other) const {
  require(num_qubits_ == other.num_qubits_,
          "Statevector::inner_product: qubit count mismatch");
  const std::size_t dim = amps_.size();
  return parallel_reduce(
      dim, Complex{0.0, 0.0},
      [&](std::size_t begin, std::size_t end) {
        Complex partial{0.0, 0.0};
        for (std::size_t z = begin; z < end; ++z) {
          partial += std::conj(amps_[z]) * other.amps_[z];
        }
        return partial;
      },
      kernel_threads(dim));
}

}  // namespace qaoaml::quantum
