// Per-tier kernel implementations.  See simd_kernels.hpp for the
// bit-identity contract every function here honors; the vector code
// annotates each deviation from the literal scalar op order with the
// exact IEEE identity that makes it bitwise safe.
//
// This translation unit must be compiled with FP contraction disabled
// (-ffp-contract=off, set in src/CMakeLists.txt): under -march=native
// the compiler would otherwise fuse the scalar mul+add sequences into
// FMAs, which round once instead of twice and would break bit-identity
// between the scalar tier and the explicit vector tiers.
#include "quantum/simd_kernels.hpp"

#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "quantum/kernel_util.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QAOAML_SIMD_X86 1
#include <immintrin.h>
#else
#define QAOAML_SIMD_X86 0
#endif

namespace qaoaml::quantum::simd {
namespace {

using detail::multiply_amp;

// ---------------------------------------------------------------------------
// Scalar tier: the reference op sequences.  These are byte-for-byte the
// loops the fused kernels ran before dispatch existed (PR 2), so the
// scalar tier reproduces every committed fixture exactly.
// ---------------------------------------------------------------------------

/// RX(beta) butterfly with c = cos(beta/2), s = sin(beta/2):
///   a0' = c*a0 - i*s*a1,  a1' = -i*s*a0 + c*a1.
/// Expanded into real arithmetic (4 multiplies) so GCC neither calls
/// __muldc3 nor spills through the generic 2x2 gate path.
inline void rx_butterfly(Complex& amp0, Complex& amp1, double c, double s) {
  const double a0r = amp0.real(), a0i = amp0.imag();
  const double a1r = amp1.real(), a1i = amp1.imag();
  amp0 = Complex{c * a0r + s * a1i, c * a0i - s * a1r};
  amp1 = Complex{c * a1r + s * a0i, c * a1i - s * a0r};
}

void scalar_phase_general(Complex* amps, const double* diag, double gamma,
                          std::size_t count) {
  for (std::size_t z = 0; z < count; ++z) {
    const double phi = -gamma * diag[z];
    multiply_amp(amps[z], std::cos(phi), std::sin(phi));
  }
}

void scalar_phase_integral(Complex* amps, const int* diag,
                           const Complex* phases, std::size_t count) {
  for (std::size_t z = 0; z < count; ++z) {
    const Complex& p = phases[static_cast<std::size_t>(diag[z])];
    multiply_amp(amps[z], p.real(), p.imag());
  }
}

void scalar_mix_tile(Complex* tile, int m, double c, double s) {
  const std::size_t tile_size = std::size_t{1} << m;
  for (int t = 0; t < m; ++t) {
    const std::size_t stride = std::size_t{1} << t;
    for (std::size_t base = 0; base < tile_size; base += 2 * stride) {
      Complex* p0 = tile + base;
      Complex* p1 = p0 + stride;
      for (std::size_t j = 0; j < stride; ++j) {
        rx_butterfly(p0[j], p1[j], c, s);
      }
    }
  }
}

void scalar_butterfly_pair(Complex* p0, Complex* p1, std::size_t len, double c,
                           double s) {
  for (std::size_t j = 0; j < len; ++j) rx_butterfly(p0[j], p1[j], c, s);
}

void scalar_butterfly_quad(Complex* p0, Complex* p1, Complex* p2, Complex* p3,
                           std::size_t len, double c, double s) {
  for (std::size_t j = 0; j < len; ++j) {
    rx_butterfly(p0[j], p1[j], c, s);  // qubit t
    rx_butterfly(p2[j], p3[j], c, s);
    rx_butterfly(p0[j], p2[j], c, s);  // qubit t+1
    rx_butterfly(p1[j], p3[j], c, s);
  }
}

/// The canonical 8-lane reduction (simd_kernels.hpp header comment).
/// The vector tiers spill their accumulators into the same `lane` shape
/// before the tail and the final combine, so all tiers share these
/// exact lines.
double scalar_expectation_block(const Complex* amps, const double* diag,
                                std::size_t count) {
  double lane[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8) {
    for (int j = 0; j < 8; ++j) {
      const double ar = amps[k + j].real();
      const double ai = amps[k + j].imag();
      lane[j] += (ar * ar + ai * ai) * diag[k + j];
    }
  }
  for (int j = 0; k + static_cast<std::size_t>(j) < count; ++j) {
    const double ar = amps[k + j].real();
    const double ai = amps[k + j].imag();
    lane[j] += (ar * ar + ai * ai) * diag[k + j];
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

constexpr KernelTable scalar_table = {
    SimdTier::kScalar,    scalar_phase_general,  scalar_phase_integral,
    scalar_mix_tile,      scalar_butterfly_pair, scalar_butterfly_quad,
    scalar_expectation_block,
};

#if QAOAML_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 tier: 2 amplitudes (4 doubles) per register.
//
// Amplitudes are interleaved [re, im]; a register holds [a0r, a0i, a1r,
// a1i].  The two bitwise-exact rewrites used throughout:
//  - IEEE subtraction is addition of the negated operand, so
//    x + (-y) == x - y and x - (-y) == x + y bit for bit;
//  - negation (sign-bit xor) and multiplication commute exactly:
//    (-s)*x == -(s*x).
// ---------------------------------------------------------------------------

/// [x0, x1, x2, x3] -> [x1, x0, x3, x2] (swap re/im within amplitudes).
__attribute__((target("avx2"))) inline __m256d avx2_swap_pairs(__m256d x) {
  return _mm256_permute_pd(x, 0x5);
}

/// amps[k] *= p[k] with pr = [p0r, p0r, p1r, p1r], pi = [p0i, p0i, p1i,
/// p1i]: re' = ar*pr - ai*pi, im' = ai*pr + ar*pi — the addsub realizes
/// exactly multiply_amp's (ar*pr - ai*pi, ar*pi + ai*pr) since IEEE
/// addition commutes bitwise.
__attribute__((target("avx2"))) inline __m256d avx2_complex_mul(__m256d v,
                                                                __m256d pr,
                                                                __m256d pi) {
  return _mm256_addsub_pd(_mm256_mul_pd(v, pr),
                          _mm256_mul_pd(avx2_swap_pairs(v), pi));
}

/// One side of the RX butterfly: c*self + rotate(other), where
/// rotate(a) = (s*ai, -(s*ar)).  Even lanes add s*other_i (same ops as
/// scalar c*a0r + s*a1i); odd lanes add -(s*other_r), bitwise equal to
/// the scalar subtraction.
__attribute__((target("avx2"))) inline __m256d
avx2_butterfly_side(__m256d self, __m256d other, __m256d c_vec, __m256d s_vec,
                    __m256d odd_neg) {
  const __m256d rot = _mm256_xor_pd(
      _mm256_mul_pd(s_vec, avx2_swap_pairs(other)), odd_neg);
  return _mm256_add_pd(_mm256_mul_pd(c_vec, self), rot);
}

__attribute__((target("avx2"))) void avx2_phase_general(Complex* amps,
                                                        const double* diag,
                                                        double gamma,
                                                        std::size_t count) {
  double* a = reinterpret_cast<double*>(amps);
  std::size_t z = 0;
  for (; z + 2 <= count; z += 2) {
    // libm cos/sin stay scalar on every tier (the bit-identity anchor);
    // only the complex multiply is vectorized.
    const double phi0 = -gamma * diag[z];
    const double phi1 = -gamma * diag[z + 1];
    const __m256d p = _mm256_set_pd(std::sin(phi1), std::cos(phi1),
                                    std::sin(phi0), std::cos(phi0));
    const __m256d pr = _mm256_movedup_pd(p);
    const __m256d pi = _mm256_permute_pd(p, 0xF);
    const __m256d v = _mm256_loadu_pd(a + 2 * z);
    _mm256_storeu_pd(a + 2 * z, avx2_complex_mul(v, pr, pi));
  }
  for (; z < count; ++z) {
    const double phi = -gamma * diag[z];
    multiply_amp(amps[z], std::cos(phi), std::sin(phi));
  }
}

__attribute__((target("avx2"))) void avx2_phase_integral(Complex* amps,
                                                         const int* diag,
                                                         const Complex* phases,
                                                         std::size_t count) {
  double* a = reinterpret_cast<double*>(amps);
  std::size_t z = 0;
  for (; z + 2 <= count; z += 2) {
    const __m128d q0 = _mm_loadu_pd(
        reinterpret_cast<const double*>(phases + diag[z]));
    const __m128d q1 = _mm_loadu_pd(
        reinterpret_cast<const double*>(phases + diag[z + 1]));
    const __m256d p = _mm256_set_m128d(q1, q0);
    const __m256d pr = _mm256_movedup_pd(p);
    const __m256d pi = _mm256_permute_pd(p, 0xF);
    const __m256d v = _mm256_loadu_pd(a + 2 * z);
    _mm256_storeu_pd(a + 2 * z, avx2_complex_mul(v, pr, pi));
  }
  for (; z < count; ++z) {
    const Complex& p = phases[static_cast<std::size_t>(diag[z])];
    multiply_amp(amps[z], p.real(), p.imag());
  }
}

__attribute__((target("avx2"))) void avx2_butterfly_pair(Complex* p0,
                                                         Complex* p1,
                                                         std::size_t len,
                                                         double c, double s) {
  const __m256d c_vec = _mm256_set1_pd(c);
  const __m256d s_vec = _mm256_set1_pd(s);
  const __m256d odd_neg = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  double* r0 = reinterpret_cast<double*>(p0);
  double* r1 = reinterpret_cast<double*>(p1);
  std::size_t j = 0;
  for (; j + 2 <= len; j += 2) {
    const __m256d v0 = _mm256_loadu_pd(r0 + 2 * j);
    const __m256d v1 = _mm256_loadu_pd(r1 + 2 * j);
    _mm256_storeu_pd(r0 + 2 * j,
                     avx2_butterfly_side(v0, v1, c_vec, s_vec, odd_neg));
    _mm256_storeu_pd(r1 + 2 * j,
                     avx2_butterfly_side(v1, v0, c_vec, s_vec, odd_neg));
  }
  for (; j < len; ++j) rx_butterfly(p0[j], p1[j], c, s);
}

__attribute__((target("avx2"))) void avx2_butterfly_quad(
    Complex* p0, Complex* p1, Complex* p2, Complex* p3, std::size_t len,
    double c, double s) {
  const __m256d c_vec = _mm256_set1_pd(c);
  const __m256d s_vec = _mm256_set1_pd(s);
  const __m256d odd_neg = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  double* r0 = reinterpret_cast<double*>(p0);
  double* r1 = reinterpret_cast<double*>(p1);
  double* r2 = reinterpret_cast<double*>(p2);
  double* r3 = reinterpret_cast<double*>(p3);
  std::size_t j = 0;
  for (; j + 2 <= len; j += 2) {
    __m256d v0 = _mm256_loadu_pd(r0 + 2 * j);
    __m256d v1 = _mm256_loadu_pd(r1 + 2 * j);
    __m256d v2 = _mm256_loadu_pd(r2 + 2 * j);
    __m256d v3 = _mm256_loadu_pd(r3 + 2 * j);
    // Same butterfly order per element as the scalar quad: (0,1), (2,3)
    // for qubit t, then (0,2), (1,3) for qubit t+1.
    const __m256d w0 = avx2_butterfly_side(v0, v1, c_vec, s_vec, odd_neg);
    const __m256d w1 = avx2_butterfly_side(v1, v0, c_vec, s_vec, odd_neg);
    const __m256d w2 = avx2_butterfly_side(v2, v3, c_vec, s_vec, odd_neg);
    const __m256d w3 = avx2_butterfly_side(v3, v2, c_vec, s_vec, odd_neg);
    v0 = avx2_butterfly_side(w0, w2, c_vec, s_vec, odd_neg);
    v2 = avx2_butterfly_side(w2, w0, c_vec, s_vec, odd_neg);
    v1 = avx2_butterfly_side(w1, w3, c_vec, s_vec, odd_neg);
    v3 = avx2_butterfly_side(w3, w1, c_vec, s_vec, odd_neg);
    _mm256_storeu_pd(r0 + 2 * j, v0);
    _mm256_storeu_pd(r1 + 2 * j, v1);
    _mm256_storeu_pd(r2 + 2 * j, v2);
    _mm256_storeu_pd(r3 + 2 * j, v3);
  }
  for (; j < len; ++j) {
    rx_butterfly(p0[j], p1[j], c, s);
    rx_butterfly(p2[j], p3[j], c, s);
    rx_butterfly(p0[j], p2[j], c, s);
    rx_butterfly(p1[j], p3[j], c, s);
  }
}

__attribute__((target("avx2"))) void avx2_mix_tile(Complex* tile, int m,
                                                   double c, double s) {
  const std::size_t tile_size = std::size_t{1} << m;
  if (m >= 1) {
    // Level t = 0: the pair partner is the adjacent amplitude, so both
    // halves of one butterfly live in a single register.  With
    // a = [a0r, a0i, a1r, a1i], reversing the quadwords gives
    // [a1i, a1r, a0i, a0r]; scaling by s and flipping the odd lanes
    // yields [s*a1i, -(s*a1r), s*a0i, -(s*a0r)], and adding c*a lands
    // exactly on the scalar butterfly outputs.
    const __m256d c_vec = _mm256_set1_pd(c);
    const __m256d s_vec = _mm256_set1_pd(s);
    const __m256d odd_neg = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
    double* r = reinterpret_cast<double*>(tile);
    for (std::size_t base = 0; base < tile_size; base += 2) {
      const __m256d v = _mm256_loadu_pd(r + 2 * base);
      const __m256d cross = _mm256_permute4x64_pd(v, 0x1B);
      const __m256d rot =
          _mm256_xor_pd(_mm256_mul_pd(s_vec, cross), odd_neg);
      _mm256_storeu_pd(r + 2 * base,
                       _mm256_add_pd(_mm256_mul_pd(c_vec, v), rot));
    }
  }
  for (int t = 1; t < m; ++t) {
    const std::size_t stride = std::size_t{1} << t;
    for (std::size_t base = 0; base < tile_size; base += 2 * stride) {
      avx2_butterfly_pair(tile + base, tile + base + stride, stride, c, s);
    }
  }
}

__attribute__((target("avx2"))) double avx2_expectation_block(
    const Complex* amps, const double* diag, std::size_t count) {
  const double* a = reinterpret_cast<const double*>(amps);
  __m256d acc_lo = _mm256_setzero_pd();  // offset series [0, 2, 1, 3]
  __m256d acc_hi = _mm256_setzero_pd();  // offset series [4, 6, 5, 7]
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256d a01 = _mm256_loadu_pd(a + 2 * k);
    const __m256d a23 = _mm256_loadu_pd(a + 2 * k + 4);
    const __m256d a45 = _mm256_loadu_pd(a + 2 * k + 8);
    const __m256d a67 = _mm256_loadu_pd(a + 2 * k + 12);
    // hadd([ar0^2, ai0^2, ar1^2, ai1^2], [ar2^2, ...]) = [n0, n2, n1,
    // n3]; permuting the diagonal into the same order (imm 0xD8 selects
    // [d0, d2, d1, d3]) keeps term z multiplied by diag[z].
    const __m256d n0213 = _mm256_hadd_pd(_mm256_mul_pd(a01, a01),
                                         _mm256_mul_pd(a23, a23));
    const __m256d n4657 = _mm256_hadd_pd(_mm256_mul_pd(a45, a45),
                                         _mm256_mul_pd(a67, a67));
    const __m256d d0213 =
        _mm256_permute4x64_pd(_mm256_loadu_pd(diag + k), 0xD8);
    const __m256d d4657 =
        _mm256_permute4x64_pd(_mm256_loadu_pd(diag + k + 4), 0xD8);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(n0213, d0213));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(n4657, d4657));
  }
  // Spill into canonical lane order (see the offset series above), then
  // run the scalar tail + combine — the same lines as the scalar tier.
  double lo[4], hi[4];
  _mm256_storeu_pd(lo, acc_lo);
  _mm256_storeu_pd(hi, acc_hi);
  double lane[8] = {lo[0], lo[2], lo[1], lo[3], hi[0], hi[2], hi[1], hi[3]};
  for (int j = 0; k + static_cast<std::size_t>(j) < count; ++j) {
    const double ar = amps[k + j].real();
    const double ai = amps[k + j].imag();
    lane[j] += (ar * ar + ai * ai) * diag[k + j];
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

const KernelTable avx2_table = {
    SimdTier::kAvx2,    avx2_phase_general,  avx2_phase_integral,
    avx2_mix_tile,      avx2_butterfly_pair, avx2_butterfly_quad,
    avx2_expectation_block,
};

// ---------------------------------------------------------------------------
// AVX-512 tier: 4 amplitudes (8 doubles) per register.
//
// AVX-512 has no addsub, so the scalar subtractions become xor of the
// sign bit followed by add — bitwise the same operation.  The packed-
// double xor (_mm512_xor_pd) is AVX512DQ, which is why the dispatcher
// gates this tier on F+DQ.  Remainders fall through a 2-amplitude
// 256-bit step and then the scalar loop, all bit-identical, covering
// every odd/short length the property sweeps throw at the tier.
// ---------------------------------------------------------------------------

#define QAOAML_AVX512_TARGET target("avx512f,avx512dq,avx2")

__attribute__((QAOAML_AVX512_TARGET)) inline __m512d avx512_swap_pairs(
    __m512d x) {
  return _mm512_permute_pd(x, 0x55);
}

__attribute__((QAOAML_AVX512_TARGET)) inline __m512d avx512_odd_neg() {
  return _mm512_set_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
}

__attribute__((QAOAML_AVX512_TARGET)) inline __m512d avx512_even_neg() {
  return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}

/// addsub emulation: even lanes x - y (as x + (-y)), odd lanes x + y.
__attribute__((QAOAML_AVX512_TARGET)) inline __m512d avx512_complex_mul(
    __m512d v, __m512d pr, __m512d pi) {
  return _mm512_add_pd(
      _mm512_mul_pd(v, pr),
      _mm512_xor_pd(_mm512_mul_pd(avx512_swap_pairs(v), pi),
                    avx512_even_neg()));
}

__attribute__((QAOAML_AVX512_TARGET)) inline __m512d avx512_butterfly_side(
    __m512d self, __m512d other, __m512d c_vec, __m512d s_vec,
    __m512d odd_neg) {
  const __m512d rot = _mm512_xor_pd(
      _mm512_mul_pd(s_vec, avx512_swap_pairs(other)), odd_neg);
  return _mm512_add_pd(_mm512_mul_pd(c_vec, self), rot);
}

__attribute__((QAOAML_AVX512_TARGET)) void avx512_phase_general(
    Complex* amps, const double* diag, double gamma, std::size_t count) {
  double* a = reinterpret_cast<double*>(amps);
  std::size_t z = 0;
  for (; z + 4 <= count; z += 4) {
    const double phi0 = -gamma * diag[z];
    const double phi1 = -gamma * diag[z + 1];
    const double phi2 = -gamma * diag[z + 2];
    const double phi3 = -gamma * diag[z + 3];
    const __m512d p = _mm512_set_pd(std::sin(phi3), std::cos(phi3),
                                    std::sin(phi2), std::cos(phi2),
                                    std::sin(phi1), std::cos(phi1),
                                    std::sin(phi0), std::cos(phi0));
    const __m512d pr = _mm512_movedup_pd(p);
    const __m512d pi = _mm512_permute_pd(p, 0xFF);
    const __m512d v = _mm512_loadu_pd(a + 2 * z);
    _mm512_storeu_pd(a + 2 * z, avx512_complex_mul(v, pr, pi));
  }
  for (; z < count; ++z) {
    const double phi = -gamma * diag[z];
    multiply_amp(amps[z], std::cos(phi), std::sin(phi));
  }
}

__attribute__((QAOAML_AVX512_TARGET)) void avx512_phase_integral(
    Complex* amps, const int* diag, const Complex* phases,
    std::size_t count) {
  double* a = reinterpret_cast<double*>(amps);
  std::size_t z = 0;
  for (; z + 4 <= count; z += 4) {
    const __m128d q0 = _mm_loadu_pd(
        reinterpret_cast<const double*>(phases + diag[z]));
    const __m128d q1 = _mm_loadu_pd(
        reinterpret_cast<const double*>(phases + diag[z + 1]));
    const __m128d q2 = _mm_loadu_pd(
        reinterpret_cast<const double*>(phases + diag[z + 2]));
    const __m128d q3 = _mm_loadu_pd(
        reinterpret_cast<const double*>(phases + diag[z + 3]));
    const __m512d p = _mm512_insertf64x4(
        _mm512_castpd256_pd512(_mm256_set_m128d(q1, q0)),
        _mm256_set_m128d(q3, q2), 1);
    const __m512d pr = _mm512_movedup_pd(p);
    const __m512d pi = _mm512_permute_pd(p, 0xFF);
    const __m512d v = _mm512_loadu_pd(a + 2 * z);
    _mm512_storeu_pd(a + 2 * z, avx512_complex_mul(v, pr, pi));
  }
  for (; z < count; ++z) {
    const Complex& p = phases[static_cast<std::size_t>(diag[z])];
    multiply_amp(amps[z], p.real(), p.imag());
  }
}

__attribute__((QAOAML_AVX512_TARGET)) void avx512_butterfly_pair(
    Complex* p0, Complex* p1, std::size_t len, double c, double s) {
  const __m512d c512 = _mm512_set1_pd(c);
  const __m512d s512 = _mm512_set1_pd(s);
  const __m512d odd512 = avx512_odd_neg();
  double* r0 = reinterpret_cast<double*>(p0);
  double* r1 = reinterpret_cast<double*>(p1);
  std::size_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m512d v0 = _mm512_loadu_pd(r0 + 2 * j);
    const __m512d v1 = _mm512_loadu_pd(r1 + 2 * j);
    _mm512_storeu_pd(r0 + 2 * j,
                     avx512_butterfly_side(v0, v1, c512, s512, odd512));
    _mm512_storeu_pd(r1 + 2 * j,
                     avx512_butterfly_side(v1, v0, c512, s512, odd512));
  }
  if (j + 2 <= len) {
    // 256-bit step: the stride-2 rows of mixer level t = 1 land here.
    const __m256d c256 = _mm256_set1_pd(c);
    const __m256d s256 = _mm256_set1_pd(s);
    const __m256d odd256 = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
    const __m256d v0 = _mm256_loadu_pd(r0 + 2 * j);
    const __m256d v1 = _mm256_loadu_pd(r1 + 2 * j);
    _mm256_storeu_pd(r0 + 2 * j,
                     avx2_butterfly_side(v0, v1, c256, s256, odd256));
    _mm256_storeu_pd(r1 + 2 * j,
                     avx2_butterfly_side(v1, v0, c256, s256, odd256));
    j += 2;
  }
  for (; j < len; ++j) rx_butterfly(p0[j], p1[j], c, s);
}

__attribute__((QAOAML_AVX512_TARGET)) void avx512_butterfly_quad(
    Complex* p0, Complex* p1, Complex* p2, Complex* p3, std::size_t len,
    double c, double s) {
  const __m512d c512 = _mm512_set1_pd(c);
  const __m512d s512 = _mm512_set1_pd(s);
  const __m512d odd512 = avx512_odd_neg();
  double* r0 = reinterpret_cast<double*>(p0);
  double* r1 = reinterpret_cast<double*>(p1);
  double* r2 = reinterpret_cast<double*>(p2);
  double* r3 = reinterpret_cast<double*>(p3);
  std::size_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m512d v0 = _mm512_loadu_pd(r0 + 2 * j);
    const __m512d v1 = _mm512_loadu_pd(r1 + 2 * j);
    const __m512d v2 = _mm512_loadu_pd(r2 + 2 * j);
    const __m512d v3 = _mm512_loadu_pd(r3 + 2 * j);
    const __m512d w0 = avx512_butterfly_side(v0, v1, c512, s512, odd512);
    const __m512d w1 = avx512_butterfly_side(v1, v0, c512, s512, odd512);
    const __m512d w2 = avx512_butterfly_side(v2, v3, c512, s512, odd512);
    const __m512d w3 = avx512_butterfly_side(v3, v2, c512, s512, odd512);
    _mm512_storeu_pd(r0 + 2 * j,
                     avx512_butterfly_side(w0, w2, c512, s512, odd512));
    _mm512_storeu_pd(r2 + 2 * j,
                     avx512_butterfly_side(w2, w0, c512, s512, odd512));
    _mm512_storeu_pd(r1 + 2 * j,
                     avx512_butterfly_side(w1, w3, c512, s512, odd512));
    _mm512_storeu_pd(r3 + 2 * j,
                     avx512_butterfly_side(w3, w1, c512, s512, odd512));
  }
  if (j < len) {
    avx2_butterfly_quad(p0 + j, p1 + j, p2 + j, p3 + j, len - j, c, s);
  }
}

__attribute__((QAOAML_AVX512_TARGET)) void avx512_mix_tile(Complex* tile,
                                                           int m, double c,
                                                           double s) {
  const std::size_t tile_size = std::size_t{1} << m;
  if (m >= 2) {
    // Level t = 0 over 4 amplitudes (2 butterflies) per register:
    // reversing the quadwords of each 256-bit half pairs every
    // amplitude with its neighbor, exactly the AVX2 t = 0 pattern
    // twice over.
    const __m512d c512 = _mm512_set1_pd(c);
    const __m512d s512 = _mm512_set1_pd(s);
    const __m512d odd512 = avx512_odd_neg();
    double* r = reinterpret_cast<double*>(tile);
    for (std::size_t base = 0; base < tile_size; base += 4) {
      const __m512d v = _mm512_loadu_pd(r + 2 * base);
      const __m512d cross = _mm512_permutex_pd(v, 0x1B);
      const __m512d rot =
          _mm512_xor_pd(_mm512_mul_pd(s512, cross), odd512);
      _mm512_storeu_pd(r + 2 * base,
                       _mm512_add_pd(_mm512_mul_pd(c512, v), rot));
    }
  } else if (m == 1) {
    rx_butterfly(tile[0], tile[1], c, s);
    return;
  }
  for (int t = 1; t < m; ++t) {
    const std::size_t stride = std::size_t{1} << t;
    for (std::size_t base = 0; base < tile_size; base += 2 * stride) {
      avx512_butterfly_pair(tile + base, tile + base + stride, stride, c, s);
    }
  }
}

const KernelTable avx512_table = {
    SimdTier::kAvx512,    avx512_phase_general,  avx512_phase_integral,
    avx512_mix_tile,      avx512_butterfly_pair, avx512_butterfly_quad,
    // The AVX2 reduction already realizes the canonical 8-lane tree (one
    // full AVX-512 register of lanes); reusing it keeps one reduction
    // implementation per lane layout instead of a third copy.
    avx2_expectation_block,
};

#endif  // QAOAML_SIMD_X86

}  // namespace

const KernelTable& kernels(SimdTier tier) {
  require(simd_tier_supported(tier),
          std::string("simd::kernels: this CPU does not support ") +
              to_string(tier));
#if QAOAML_SIMD_X86
  switch (tier) {
    case SimdTier::kScalar:
      return scalar_table;
    case SimdTier::kAvx2:
      return avx2_table;
    case SimdTier::kAvx512:
      return avx512_table;
  }
#endif
  return scalar_table;
}

const KernelTable& active_kernels() { return kernels(active_simd_tier()); }

}  // namespace qaoaml::quantum::simd
