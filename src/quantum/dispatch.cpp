#include "quantum/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace qaoaml::quantum {
namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QAOAML_SIMD_X86 1
#else
#define QAOAML_SIMD_X86 0
#endif

SimdTier probe_cpu() {
#if QAOAML_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx2")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kScalar;
}

// 0 = no override, else 1 + static_cast<int>(tier) (atomic so overrides
// made on the main thread are visible to pool workers).
std::atomic<int> tier_override{0};

}  // namespace

SimdTier detected_simd_tier() {
  static const SimdTier detected = probe_cpu();
  return detected;
}

bool simd_tier_supported(SimdTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(detected_simd_tier());
}

const char* to_string(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<SimdTier> parse_simd_tier(std::string_view text) {
  if (text == "scalar") return SimdTier::kScalar;
  if (text == "avx2") return SimdTier::kAvx2;
  if (text == "avx512") return SimdTier::kAvx512;
  return std::nullopt;
}

SimdTier active_simd_tier() {
  const int over = tier_override.load(std::memory_order_relaxed);
  if (over != 0) return static_cast<SimdTier>(over - 1);
  if (const char* env = std::getenv("QAOAML_SIMD")) {
    const std::optional<SimdTier> tier = parse_simd_tier(env);
    require(tier.has_value(),
            std::string("QAOAML_SIMD: unknown tier '") + env +
                "' (expected scalar|avx2|avx512)");
    require(simd_tier_supported(*tier),
            std::string("QAOAML_SIMD=") + env +
                ": this CPU does not support that tier (detected " +
                to_string(detected_simd_tier()) + ")");
    return *tier;
  }
  return detected_simd_tier();
}

ScopedSimdTier::ScopedSimdTier(SimdTier tier) : previous_(0) {
  require(simd_tier_supported(tier),
          std::string("ScopedSimdTier: this CPU does not support ") +
              to_string(tier) + " (detected " +
              to_string(detected_simd_tier()) + ")");
  previous_ = tier_override.exchange(1 + static_cast<int>(tier),
                                     std::memory_order_relaxed);
}

ScopedSimdTier::~ScopedSimdTier() {
  tier_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace qaoaml::quantum
