#include "quantum/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qaoaml::quantum {

bool is_parametric(GateKind kind) {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
      return true;
    default:
      return false;
  }
}

bool is_two_qubit(GateKind kind) {
  return kind == GateKind::kCnot || kind == GateKind::kCz;
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "h";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kCnot: return "cnot";
    case GateKind::kCz: return "cz";
  }
  return "?";
}

double ParamExpr::evaluate(std::span<const double> params) const {
  if (index < 0) return offset;
  require(static_cast<std::size_t>(index) < params.size(),
          "ParamExpr: parameter index out of range");
  return offset + coeff * params[static_cast<std::size_t>(index)];
}

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1, "Circuit: need at least one qubit");
}

void Circuit::check_qubit(int q) const {
  require(q >= 0 && q < num_qubits_, "Circuit: qubit index out of range");
}

void Circuit::push(GateKind kind, int q0, int q1, ParamExpr angle) {
  check_qubit(q0);
  if (is_two_qubit(kind)) {
    check_qubit(q1);
    require(q0 != q1, "Circuit: two-qubit gate needs distinct qubits");
  }
  if (is_parametric(kind) && angle.index >= 0) {
    num_parameters_ = std::max(num_parameters_, angle.index + 1);
  }
  ops_.push_back(Operation{kind, q0, q1, angle});
}

void Circuit::h(int q) { push(GateKind::kH, q, -1, {}); }
void Circuit::x(int q) { push(GateKind::kX, q, -1, {}); }
void Circuit::y(int q) { push(GateKind::kY, q, -1, {}); }
void Circuit::z(int q) { push(GateKind::kZ, q, -1, {}); }
void Circuit::rx(int q, ParamExpr angle) { push(GateKind::kRx, q, -1, angle); }
void Circuit::ry(int q, ParamExpr angle) { push(GateKind::kRy, q, -1, angle); }
void Circuit::rz(int q, ParamExpr angle) { push(GateKind::kRz, q, -1, angle); }
void Circuit::phase(int q, ParamExpr angle) {
  push(GateKind::kPhase, q, -1, angle);
}
void Circuit::cnot(int control, int target) {
  push(GateKind::kCnot, control, target, {});
}
void Circuit::cz(int a, int b) { push(GateKind::kCz, a, b, {}); }

void Circuit::append(const Circuit& other) {
  require(other.num_qubits_ == num_qubits_, "Circuit::append: qubit mismatch");
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  num_parameters_ = std::max(num_parameters_, other.num_parameters_);
}

void Circuit::apply_to(Statevector& state,
                       std::span<const double> params) const {
  require(state.num_qubits() == num_qubits_,
          "Circuit::apply_to: state qubit count mismatch");
  require(static_cast<int>(params.size()) >= num_parameters_,
          "Circuit::apply_to: not enough parameters bound");
  for (const Operation& op : ops_) {
    switch (op.kind) {
      case GateKind::kH:
        state.apply_gate(gates::hadamard(), op.q0);
        break;
      case GateKind::kX:
        state.apply_gate(gates::pauli_x(), op.q0);
        break;
      case GateKind::kY:
        state.apply_gate(gates::pauli_y(), op.q0);
        break;
      case GateKind::kZ:
        state.apply_gate(gates::pauli_z(), op.q0);
        break;
      case GateKind::kRx:
        state.apply_gate(gates::rx(op.angle.evaluate(params)), op.q0);
        break;
      case GateKind::kRy:
        state.apply_gate(gates::ry(op.angle.evaluate(params)), op.q0);
        break;
      case GateKind::kRz:
        state.apply_rz(op.q0, op.angle.evaluate(params));
        break;
      case GateKind::kPhase:
        state.apply_gate(gates::phase(op.angle.evaluate(params)), op.q0);
        break;
      case GateKind::kCnot:
        state.apply_cnot(op.q0, op.q1);
        break;
      case GateKind::kCz:
        state.apply_cz(op.q0, op.q1);
        break;
    }
  }
}

Statevector Circuit::simulate(std::span<const double> params) const {
  Statevector state(num_qubits_);
  apply_to(state, params);
  return state;
}

std::size_t Circuit::count(GateKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [kind](const Operation& op) { return op.kind == kind; }));
}

int Circuit::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int depth = 0;
  for (const Operation& op : ops_) {
    int start = level[static_cast<std::size_t>(op.q0)];
    if (is_two_qubit(op.kind)) {
      start = std::max(start, level[static_cast<std::size_t>(op.q1)]);
    }
    const int finish = start + 1;
    level[static_cast<std::size_t>(op.q0)] = finish;
    if (is_two_qubit(op.kind)) {
      level[static_cast<std::size_t>(op.q1)] = finish;
    }
    depth = std::max(depth, finish);
  }
  return depth;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const Operation& op : ops_) {
    os << gate_name(op.kind) << " q" << op.q0;
    if (is_two_qubit(op.kind)) os << ", q" << op.q1;
    if (is_parametric(op.kind)) {
      if (op.angle.index >= 0) {
        os << " (" << op.angle.coeff << "*p[" << op.angle.index << "]";
        if (op.angle.offset != 0.0) os << " + " << op.angle.offset;
        os << ")";
      } else {
        os << " (" << op.angle.offset << ")";
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qaoaml::quantum
