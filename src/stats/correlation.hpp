// Correlation analysis.
//
// Reproduces the Fig. 5 study: Pearson R between the predictor features
// (gamma1OPT(p=1), beta1OPT(p=1), target depth) and each response angle.
#ifndef QAOAML_STATS_CORRELATION_HPP
#define QAOAML_STATS_CORRELATION_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qaoaml::stats {

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Pairwise Pearson correlation matrix of the columns of `data`
/// (rows = observations, cols = variables).
linalg::Matrix correlation_matrix(const linalg::Matrix& data);

}  // namespace qaoaml::stats

#endif  // QAOAML_STATS_CORRELATION_HPP
