// Descriptive statistics over samples of doubles.
//
// The experiment harness aggregates approximation ratios and function-call
// counts with these helpers (Table I reports mean and standard deviation).
#ifndef QAOAML_STATS_DESCRIPTIVE_HPP
#define QAOAML_STATS_DESCRIPTIVE_HPP

#include <cstddef>
#include <vector>

namespace qaoaml::stats {

/// Arithmetic mean; requires a non-empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for samples of size < 2.
double variance(const std::vector<double>& xs);

/// Square root of variance().
double stddev(const std::vector<double>& xs);

/// Sample median (average of middle two for even sizes).
double median(std::vector<double> xs);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// One-pass summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes all Summary fields; requires a non-empty sample.
Summary summarize(const std::vector<double>& xs);

/// Online mean/variance accumulator (Welford's algorithm); useful when the
/// sample is too large or streaming to keep around.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< unbiased (n-1); 0 when count < 2
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace qaoaml::stats

#endif  // QAOAML_STATS_DESCRIPTIVE_HPP
