#include "stats/correlation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::stats {

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  require(xs.size() == ys.size(), "pearson: length mismatch");
  require(xs.size() >= 2, "pearson: need at least two observations");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

linalg::Matrix correlation_matrix(const linalg::Matrix& data) {
  const std::size_t vars = data.cols();
  linalg::Matrix out(vars, vars);
  std::vector<std::vector<double>> columns(vars);
  for (std::size_t c = 0; c < vars; ++c) columns[c] = data.col(c);
  for (std::size_t i = 0; i < vars; ++i) {
    out(i, i) = 1.0;
    for (std::size_t j = i + 1; j < vars; ++j) {
      const double r = pearson(columns[i], columns[j]);
      out(i, j) = r;
      out(j, i) = r;
    }
  }
  return out;
}

}  // namespace qaoaml::stats
