// Fixed-bin histogram with a plain-text renderer.
//
// The figure benches print distribution shapes (Fig. 1(c) AR / FC spreads,
// Fig. 6 prediction-error distributions) with this.
#ifndef QAOAML_STATS_HISTOGRAM_HPP
#define QAOAML_STATS_HISTOGRAM_HPP

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace qaoaml::stats {

/// Equal-width histogram over [lo, hi] with `bins` buckets.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning the sample's own min/max.
  static Histogram of(const std::vector<double>& xs, std::size_t bins);

  /// Adds one observation; values outside [lo, hi] clamp to the end bins.
  void add(double x);

  /// Adds every value in `xs`.
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }

  /// Center of bin `bin`.
  double bin_center(std::size_t bin) const;

  /// Renders rows like "[0.10, 0.20) ########  12".
  void print(std::ostream& os, std::size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace qaoaml::stats

#endif  // QAOAML_STATS_HISTOGRAM_HPP
