#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoaml::stats {

double mean(const std::vector<double>& xs) {
  require(!xs.empty(), "mean: empty sample");
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  require(!xs.empty(), "median: empty sample");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double upper = xs[mid];
  if (xs.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

double percentile(std::vector<double> xs, double q) {
  require(!xs.empty(), "percentile: empty sample");
  require(q >= 0.0 && q <= 100.0, "percentile: q must lie in [0, 100]");
  std::sort(xs.begin(), xs.end());
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double min(const std::vector<double>& xs) {
  require(!xs.empty(), "min: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  require(!xs.empty(), "max: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.max = max(xs);
  s.median = median(xs);
  return s;
}

void Accumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  require(count_ > 0, "Accumulator::mean: empty");
  return mean_;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace qaoaml::stats
