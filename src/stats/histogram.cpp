#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(lo < hi, "Histogram: requires lo < hi");
  require(bins >= 1, "Histogram: requires at least one bin");
}

Histogram Histogram::of(const std::vector<double>& xs, std::size_t bins) {
  require(!xs.empty(), "Histogram::of: empty sample");
  double lo = min(xs);
  double hi = max(xs);
  if (lo == hi) {  // degenerate sample: widen so every value lands mid-bin
    lo -= 0.5;
    hi += 0.5;
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const auto raw = static_cast<long long>(std::floor((x - lo_) / width));
  const long long last = static_cast<long long>(counts_.size()) - 1;
  const std::size_t bin = static_cast<std::size_t>(std::clamp(raw, 0LL, last));
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (const double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::bin_center: out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

void Histogram::print(std::ostream& os, std::size_t max_bar_width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double left = lo_ + static_cast<double>(b) * width;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_bar_width / std::max<std::size_t>(peak, 1);
    char label[64];
    std::snprintf(label, sizeof(label), "[%8.4f, %8.4f)", left, left + width);
    os << label << ' ' << std::string(bar, '#') << "  " << counts_[b] << '\n';
  }
}

}  // namespace qaoaml::stats
